//! Mutable overlay over a frozen [`ShardedIndex`]: the **delta segment**.
//!
//! The frozen index is immutable by design — that is what makes its
//! probes lock-free and its persistence byte-stable. Live ingest
//! therefore never touches it: a [`LiveIndex`] pairs the frozen shards
//! with a small mutable picture of everything that changed since the
//! last compaction:
//!
//! * **delta tables** — newly ingested (or re-ingested) tables, indexed
//!   in their own small [`TableIndex`] rebuilt once per mutation *batch*
//!   ([`LiveIndex::with_ops_applied`] — N ops, one rebuild; the delta
//!   is bounded by the compaction threshold, so a rebuild is
//!   milliseconds, not a full corpus build);
//! * **tombstones** — frozen tables deleted since the last compaction;
//! * **overridden** — frozen table ids shadowed by a delta re-ingest
//!   (the delta copy wins).
//!
//! Ranked probes merge frozen and delta hits under the one total order
//! every sorter in the repo uses ([`SearchHit::rank_order`]), after
//! over-fetching the frozen side by the number of shadowed tables so
//! filtering tombstoned hits can never starve the top-k.
//!
//! ## Scoring statistics: the documented approximation
//!
//! Delta hits are scored against the **merged** document frequencies
//! (frozen df + delta df, N = frozen N + delta N), so a delta table
//! competes on the same IDF scale as the corpus it joins. Frozen hits
//! keep their freeze-time statistics — rescoring billions of postings
//! per ingest would defeat the point of a delta segment. The two scales
//! differ by at most the delta's contribution to df/N, which the
//! compaction threshold keeps small; **compaction erases the
//! approximation entirely** (a compacted engine is byte-identical to a
//! from-scratch build over the same logical tables, which
//! `tests/live_equivalence.rs` asserts).
//!
//! A `LiveIndex` is itself immutable: mutations return a new value
//! (sharing the frozen `Arc`), so a server can publish each one through
//! its generation-tagged engine slot without locking readers.

use crate::field::Field;
use crate::search::{DocSets, SearchHit, TableIndex};
use crate::shard::ShardedIndex;
use crate::IndexBuilder;
use std::collections::BTreeSet;
use std::sync::Arc;
use wwt_model::{TableId, WebTable};
use wwt_text::{CorpusStats, TermDict, TermId};

/// One mutation in a batch handed to [`LiveIndex::with_ops_applied`].
///
/// The `overrides_frozen` / `tombstone_frozen` flags carry the caller's
/// knowledge of the frozen table store (the overlay never sees it);
/// because the frozen store is immutable between compactions, those
/// flags depend only on the id, never on the position in the batch.
#[derive(Debug, Clone)]
pub enum LiveOp {
    /// Add (or replace) one table in the delta.
    Add {
        /// The table to ingest.
        table: WebTable,
        /// Whether the frozen corpus also contains this id (shadow it).
        overrides_frozen: bool,
    },
    /// Remove one table: delta eviction, frozen tombstone, or both.
    Remove {
        /// The id to remove.
        id: TableId,
        /// Whether the frozen corpus contains this id (tombstone it).
        tombstone_frozen: bool,
    },
}

/// A frozen [`ShardedIndex`] plus the mutable delta riding on top of it.
#[derive(Debug)]
pub struct LiveIndex {
    frozen: Arc<ShardedIndex>,
    /// Delta tables sorted ascending by id (deterministic rebuild order).
    delta_tables: Vec<WebTable>,
    /// Index over exactly `delta_tables`, scored with merged statistics.
    delta: TableIndex,
    /// Frozen tables deleted since the last compaction.
    tombstones: BTreeSet<TableId>,
    /// Frozen tables shadowed by a delta re-ingest of the same id.
    overridden: BTreeSet<TableId>,
}

impl LiveIndex {
    /// An overlay with an empty delta: answers exactly like `frozen`.
    pub fn empty(frozen: Arc<ShardedIndex>) -> Self {
        let delta = build_delta_index(&frozen, &[]);
        LiveIndex {
            frozen,
            delta_tables: Vec::new(),
            delta,
            tombstones: BTreeSet::new(),
            overridden: BTreeSet::new(),
        }
    }

    /// The frozen side of the overlay.
    pub fn frozen(&self) -> &ShardedIndex {
        &self.frozen
    }

    /// The shared handle to the frozen side.
    pub fn frozen_arc(&self) -> Arc<ShardedIndex> {
        Arc::clone(&self.frozen)
    }

    /// Adds (or replaces) one table in the delta. `overrides_frozen`
    /// says whether the frozen corpus also contains this id — the caller
    /// owns the table store, so it makes that call — in which case the
    /// frozen copy is shadowed until compaction.
    pub fn with_table_added(&self, table: WebTable, overrides_frozen: bool) -> Self {
        self.with_ops_applied(vec![LiveOp::Add {
            table,
            overrides_frozen,
        }])
    }

    /// Removes one table: drops it from the delta if present, and
    /// tombstones the frozen copy when `tombstone_frozen` (the caller
    /// checked the frozen store). The caller is responsible for not
    /// removing ids that exist nowhere.
    pub fn with_table_removed(&self, id: TableId, tombstone_frozen: bool) -> Self {
        self.with_ops_applied(vec![LiveOp::Remove {
            id,
            tombstone_frozen,
        }])
    }

    /// Applies a whole batch of mutations with **one** delta-index
    /// rebuild, instead of the O(delta) rebuild every individual
    /// mutation used to pay. The set mutations (delta membership,
    /// tombstones, overrides) apply in batch order — so an add and a
    /// remove of the same id interact exactly as they would applied one
    /// by one — and the delta index is rebuilt once over the final
    /// table set. Because the rebuilt index is a pure function of that
    /// final set (tables sorted ascending by id), the result is
    /// identical to folding the ops through [`Self::with_table_added`] /
    /// [`Self::with_table_removed`] sequentially; this is what makes
    /// journal replay reproduce the live engine byte-for-byte.
    pub fn with_ops_applied(&self, ops: Vec<LiveOp>) -> Self {
        let mut delta_tables = self.delta_tables.clone();
        let mut tombstones = self.tombstones.clone();
        let mut overridden = self.overridden.clone();
        for op in ops {
            match op {
                LiveOp::Add {
                    table,
                    overrides_frozen,
                } => {
                    let id = table.id;
                    delta_tables.retain(|t| t.id != id);
                    delta_tables.push(table);
                    tombstones.remove(&id); // a re-add revives a deleted id
                    if overrides_frozen {
                        overridden.insert(id);
                    }
                }
                LiveOp::Remove {
                    id,
                    tombstone_frozen,
                } => {
                    delta_tables.retain(|t| t.id != id);
                    overridden.remove(&id);
                    if tombstone_frozen {
                        tombstones.insert(id);
                    }
                }
            }
        }
        delta_tables.sort_by_key(|t| t.id);
        let refs: Vec<&WebTable> = delta_tables.iter().collect();
        let delta = build_delta_index(&self.frozen, &refs);
        LiveIndex {
            frozen: Arc::clone(&self.frozen),
            delta_tables,
            delta,
            tombstones,
            overridden,
        }
    }

    /// Number of tables in the delta segment.
    pub fn delta_len(&self) -> usize {
        self.delta_tables.len()
    }

    /// Number of tombstoned frozen tables.
    pub fn tombstone_len(&self) -> usize {
        self.tombstones.len()
    }

    /// Frozen tables a probe must skip: tombstoned or delta-overridden.
    pub fn shadowed_len(&self) -> usize {
        self.tombstones.len() + self.overridden.len()
    }

    /// True when the delta carries no mutations at all.
    pub fn is_empty(&self) -> bool {
        self.delta_tables.is_empty() && self.tombstones.is_empty() && self.overridden.is_empty()
    }

    /// True when frozen hits for this table must be dropped.
    pub fn is_shadowed(&self, id: TableId) -> bool {
        self.tombstones.contains(&id) || self.overridden.contains(&id)
    }

    /// True when this frozen table is deleted (not merely overridden).
    pub fn is_tombstoned(&self, id: TableId) -> bool {
        self.tombstones.contains(&id)
    }

    /// The delta's copy of a table, if it has one.
    pub fn delta_table(&self, id: TableId) -> Option<&WebTable> {
        self.delta_tables.iter().find(|t| t.id == id)
    }

    /// The delta tables, ascending by id.
    pub fn delta_tables(&self) -> &[WebTable] {
        &self.delta_tables
    }

    /// Logical table count: frozen minus shadowed, plus delta.
    pub fn n_tables(&self) -> usize {
        self.frozen.n_docs() - self.shadowed_len() + self.delta_tables.len()
    }

    /// Ranked probe over the delta segment only (the engine merges these
    /// with its scatter-gathered frozen hits under
    /// [`SearchHit::rank_order`]).
    pub fn delta_search(&self, tokens: &[String], k: usize) -> Vec<SearchHit> {
        self.delta.search(tokens, k)
    }

    /// Ranked probe over the whole live view: frozen hits (over-fetched
    /// by the shadow count, then filtered) merged with delta hits under
    /// the global total order.
    pub fn search(&self, tokens: &[String], k: usize) -> Vec<SearchHit> {
        let mut hits = self.frozen.search(tokens, k + self.shadowed_len());
        hits.retain(|h| !self.is_shadowed(h.table));
        hits.extend(self.delta.search(tokens, k));
        hits.sort_by(SearchHit::rank_order);
        hits.truncate(k);
        hits
    }

    /// The table id behind a doc id handed out by this overlay's
    /// [`DocSets`] impl: frozen ids keep their global ids, delta ids sit
    /// above them (offset by the frozen doc count).
    pub fn table_of_doc(&self, doc: u32) -> TableId {
        let n_frozen = self.frozen.n_docs() as u32;
        if doc < n_frozen {
            self.frozen.table_of_doc(doc)
        } else {
            self.delta.table_of_doc(doc - n_frozen)
        }
    }
}

impl DocSets for LiveIndex {
    /// Conjunctive probe over the live view: the frozen result with
    /// shadowed tables filtered out, then the delta result relabeled
    /// above the frozen id space — sorted overall, and mutually
    /// consistent across probes of the same overlay (all PMI² needs).
    /// The expensive sub-probes are memoized inside the frozen facade
    /// and the delta index; the filter-and-offset pass here is linear in
    /// the result and cheap enough to redo per call.
    fn docs_with_all(&self, tokens: &[String], fields: &[Field]) -> Arc<Vec<u32>> {
        let frozen = self.frozen.docs_with_all(tokens, fields);
        let delta = self.delta.docs_with_all(tokens, fields);
        if self.shadowed_len() == 0 && delta.is_empty() {
            return frozen;
        }
        let n_frozen = self.frozen.n_docs() as u32;
        let mut out: Vec<u32> = frozen
            .iter()
            .copied()
            .filter(|&d| !self.is_shadowed(self.frozen.table_of_doc(d)))
            .collect();
        out.extend(delta.iter().map(|&d| n_frozen + d));
        Arc::new(out)
    }
}

/// Builds the delta's index: the delta tables frozen into a standalone
/// [`TableIndex`] whose statistics are the **merged** corpus — each
/// delta term's df is its delta df plus the frozen df, and N is the sum
/// of both doc counts — so delta scores live on the corpus's IDF scale.
fn build_delta_index(frozen: &ShardedIndex, tables: &[&WebTable]) -> TableIndex {
    let mut b = IndexBuilder::new();
    for t in tables {
        b.add_table(t);
    }
    let shard = b.freeze();
    let merged_n = frozen.stats().n_docs() + shard.doc_tables.len() as u64;
    let merged_dfs: Vec<u32> = shard
        .terms
        .iter()
        .zip(&shard.dfs)
        .map(|(term, &df)| df + frozen.stats().df(term))
        .collect();
    let dict = Arc::new(TermDict::from_sorted_terms(shard.terms));
    let stats = Arc::new(CorpusStats::from_shared_dict(
        merged_n,
        Arc::clone(&dict),
        merged_dfs,
    ));
    let idf = Arc::new(
        (0..dict.len() as u32)
            .map(|i| stats.idf_id(TermId(i)))
            .collect::<Vec<f64>>(),
    );
    let postings = shard
        .postings
        .into_iter()
        .map(|p| Some(Box::new(p)))
        .collect();
    TableIndex::from_interned_parts(
        dict,
        postings,
        shard.doc_tables,
        shard.field_lens,
        stats,
        idf,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShardedIndexBuilder;
    use wwt_model::ContextSnippet;

    fn table(id: u32, header: &str, context: &str, cells: &[&str]) -> WebTable {
        WebTable::new(
            TableId(id),
            "u",
            None,
            vec![header.split(',').map(str::to_string).collect()],
            vec![cells.iter().map(|s| s.to_string()).collect()],
            vec![ContextSnippet::new(context, 0.8)],
        )
        .unwrap()
    }

    fn frozen(n: u32, shards: usize) -> Arc<ShardedIndex> {
        let mut b = ShardedIndexBuilder::new(shards);
        for i in 0..n {
            let a = format!("entity{}", i % 5);
            b.add_table(&table(
                i,
                "country,currency",
                "list of currencies",
                &[&a, "rupee"],
            ));
        }
        Arc::new(b.build())
    }

    fn toks(s: &str) -> Vec<String> {
        wwt_text::tokenize(s)
    }

    #[test]
    fn empty_delta_answers_like_frozen() {
        let f = frozen(10, 3);
        let live = LiveIndex::empty(Arc::clone(&f));
        assert!(live.is_empty());
        assert_eq!(live.n_tables(), 10);
        let a = f.search(&toks("country currency"), 5);
        let b = live.search(&toks("country currency"), 5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.table, y.table);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    #[test]
    fn added_table_becomes_searchable() {
        let live = LiveIndex::empty(frozen(6, 2));
        let t = table(
            100,
            "volcano,elevation",
            "volcano heights",
            &["etna", "3329"],
        );
        let live = live.with_table_added(t, false);
        assert_eq!(live.delta_len(), 1);
        assert_eq!(live.n_tables(), 7);
        let hits = live.search(&toks("volcano elevation"), 5);
        assert_eq!(hits.first().map(|h| h.table), Some(TableId(100)));
        // The frozen corpus is untouched.
        assert!(live.frozen().search(&toks("volcano"), 5).is_empty());
    }

    #[test]
    fn removal_tombstones_frozen_tables() {
        let live = LiveIndex::empty(frozen(6, 2));
        let victim = live.frozen().search(&toks("country currency"), 1)[0].table;
        let live = live.with_table_removed(victim, true);
        assert_eq!(live.tombstone_len(), 1);
        assert_eq!(live.n_tables(), 5);
        let hits = live.search(&toks("country currency"), 10);
        assert!(hits.iter().all(|h| h.table != victim));
        // Over-fetch keeps the top-k full despite the filtered hit.
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn reingest_overrides_frozen_copy() {
        let live = LiveIndex::empty(frozen(6, 2));
        let id = TableId(0);
        let replacement = table(0, "volcano,elevation", "volcanoes", &["etna", "3329"]);
        let live = live.with_table_added(replacement, true);
        assert!(live.is_shadowed(id));
        assert!(!live.is_tombstoned(id));
        let hits = live.search(&toks("volcano"), 5);
        assert_eq!(hits.first().map(|h| h.table), Some(id));
        // The old copy no longer matches its frozen vocabulary.
        let country = live.search(&toks("country currency"), 10);
        assert!(country.iter().all(|h| h.table != id));
    }

    #[test]
    fn removing_a_delta_table_then_reviving_a_tombstone() {
        let live = LiveIndex::empty(frozen(4, 2));
        let t = table(50, "volcano,height", "volcanoes", &["etna", "3329"]);
        let live = live.with_table_added(t.clone(), false);
        let live = live.with_table_removed(TableId(50), false);
        assert!(live.is_empty(), "delta add+remove cancels out");
        // Tombstone a frozen table, then re-add under the same id.
        let live = live.with_table_removed(TableId(1), true);
        assert!(live.is_tombstoned(TableId(1)));
        let live = live.with_table_added(table(1, "volcano,height", "v", &["x", "y"]), true);
        assert!(!live.is_tombstoned(TableId(1)));
        assert!(live.is_shadowed(TableId(1)), "override, not tombstone");
    }

    #[test]
    fn delta_scores_use_merged_statistics() {
        // "rupee" saturates the frozen corpus; a brand-new term does not.
        // With merged stats the delta index must score the common term
        // lower than the rare one, even though *within the delta alone*
        // both appear once.
        let f = frozen(20, 2);
        let live = LiveIndex::empty(f)
            .with_table_added(table(200, "rupee,xylophone", "mixed", &["a", "b"]), false);
        let rupee = live.delta_search(&toks("rupee"), 1)[0].score;
        let xylo = live.delta_search(&toks("xylophone"), 1)[0].score;
        assert!(
            xylo > rupee,
            "merged idf must rank the corpus-rare term higher: {xylo} vs {rupee}"
        );
    }

    #[test]
    fn docsets_filter_shadowed_and_relabel_delta() {
        let f = frozen(6, 2);
        let n_frozen = f.n_docs() as u32;
        let live = LiveIndex::empty(f)
            .with_table_added(
                table(80, "country,mountain", "peaks", &["k2", "8611"]),
                false,
            )
            .with_table_removed(TableId(2), true);
        let docs = DocSets::docs_with_all(&live, &toks("country"), &[Field::Header]);
        assert!(docs.windows(2).all(|w| w[0] < w[1]), "sorted: {docs:?}");
        let tables: Vec<TableId> = docs.iter().map(|&d| live.table_of_doc(d)).collect();
        assert!(tables.contains(&TableId(80)), "delta doc present");
        assert!(!tables.contains(&TableId(2)), "tombstoned doc filtered");
        // The delta doc sits above the frozen id space.
        assert!(docs.iter().any(|&d| d >= n_frozen));
    }

    #[test]
    fn batch_ops_match_sequential_mutations() {
        let f = frozen(8, 2);
        let a = table(40, "volcano,height", "volcanoes", &["etna", "3329"]);
        let b = table(41, "volcano,height", "volcanoes", &["fuji", "3776"]);
        let c = table(3, "volcano,height", "replacement", &["k2", "8611"]);
        let ops = vec![
            LiveOp::Add {
                table: a.clone(),
                overrides_frozen: false,
            },
            LiveOp::Add {
                table: b.clone(),
                overrides_frozen: false,
            },
            LiveOp::Remove {
                id: TableId(40),
                tombstone_frozen: false,
            },
            LiveOp::Remove {
                id: TableId(1),
                tombstone_frozen: true,
            },
            LiveOp::Add {
                table: c.clone(),
                overrides_frozen: true,
            },
        ];
        let sequential = LiveIndex::empty(Arc::clone(&f))
            .with_table_added(a, false)
            .with_table_added(b, false)
            .with_table_removed(TableId(40), false)
            .with_table_removed(TableId(1), true)
            .with_table_added(c, true);
        let batched = LiveIndex::empty(f).with_ops_applied(ops);
        assert_eq!(sequential.delta_len(), batched.delta_len());
        assert_eq!(sequential.tombstone_len(), batched.tombstone_len());
        assert_eq!(sequential.shadowed_len(), batched.shadowed_len());
        for query in ["volcano height", "country currency", "replacement"] {
            let x = sequential.search(&toks(query), 10);
            let y = batched.search(&toks(query), 10);
            assert_eq!(x.len(), y.len(), "query {query:?}");
            for (h1, h2) in x.iter().zip(&y) {
                assert_eq!(h1.table, h2.table);
                assert_eq!(h1.score.to_bits(), h2.score.to_bits());
            }
        }
    }

    #[test]
    fn merge_respects_the_global_total_order() {
        // Hits from frozen and delta interleave by (score desc, id asc).
        let live = LiveIndex::empty(frozen(8, 2)).with_table_added(
            table(
                300,
                "country,currency",
                "list of currencies",
                &["entity0", "rupee"],
            ),
            false,
        );
        let hits = live.search(&toks("country currency"), 9);
        for w in hits.windows(2) {
            assert!(
                SearchHit::rank_order(&w[0], &w[1]) != std::cmp::Ordering::Greater,
                "out of order: {w:?}"
            );
        }
        assert!(hits.iter().any(|h| h.table == TableId(300)));
    }
}
