//! # wwt-index
//!
//! The search-index substrate of WWT — a from-scratch replacement for the
//! Lucene deployment of paper §2.1/§2.2.1.
//!
//! Each extracted web table is indexed as one document with three text
//! fields — **header**, **context** and **content** — carrying boosts
//! 2.0 / 1.5 / 1.0 respectively (the paper's values). Queries are OR
//! keyword probes scored with TF-IDF; the engine issues two probes per
//! query (keywords only, then keywords ∪ sampled rows of confident
//! tables).
//!
//! Beyond ranked retrieval, the index exposes the *document-set* operations
//! the PMI² feature (§3.2.3) needs: `H(Qℓ)` (tables containing all of
//! `Qℓ`'s tokens in header∪context) and `B(cell)` (tables containing a
//! cell's tokens in content).
//!
//! The index is immutable after [`IndexBuilder::build`]; a small internal
//! cache (guarded by a mutex) memoizes repeated doc-set probes within a
//! query. [`persist`] provides a compact binary serialization, and
//! [`store`] a JSON-lines table store standing in for the paper's on-disk
//! "Table Store".
//!
//! For multicore retrieval, [`shard`] hash-partitions the corpus into N
//! independent [`TableIndex`] shards behind a [`ShardedIndex`] facade
//! whose probes are **byte-identical** to the unsharded index (global
//! merged statistics, total-order hit merging, consistent doc-id
//! relabeling); [`persist::save_sharded`]/[`persist::load_sharded`]
//! round-trip the partitioned layout through a versioned manifest.
//!
//! Live mutations ride [`live`] (the mutable delta segment) and are made
//! durable by [`journal`] — a length-prefixed, checksummed write-ahead
//! log whose reader tolerates torn tails, so acknowledged ingests
//! survive a crash and replay at boot.

pub mod builder;
pub mod codec;
pub(crate) mod docset_cache;
pub mod field;
pub mod journal;
pub mod live;
pub mod persist;
pub mod search;
pub mod shard;
pub mod store;

pub use builder::IndexBuilder;
pub use codec::{table_from_json, table_to_json};
pub use field::Field;
pub use journal::{FsyncPolicy, Journal, JournalRecord, JournalReplay, TornTail};
pub use live::{LiveIndex, LiveOp};
pub use search::{DocSets, SearchHit, TableIndex};
pub use shard::{shard_of, ShardedIndex, ShardedIndexBuilder};
pub use store::TableStore;
