//! Write-ahead journal for live mutations: the durability side of the
//! delta segment.
//!
//! [`crate::LiveIndex`] makes single-table ingest cheap, but an
//! uncompacted delta lives only in memory — a crash after the 202
//! acknowledgment would silently lose acknowledged writes. The journal
//! closes that hole: every live mutation appends one self-checking
//! record here *and is fsync'd before the acknowledgment leaves the
//! server*, and boot replays the journal over the frozen index to
//! reconstruct the exact pre-crash logical corpus.
//!
//! ## Record format
//!
//! Each record is length-prefixed and checksummed (integers
//! little-endian):
//!
//! ```text
//! [u8 op] [u32 payload_len] [u64 fnv1a64(op || payload)] [payload]
//! ```
//!
//! * op `1` — **add**: the payload is the table's one-line JSON, exactly
//!   the [`crate::table_to_json`] line the table store persists.
//! * op `2` — **remove**: the payload is the decimal table id.
//!
//! ## Torn tails are expected, not fatal
//!
//! A crash mid-append leaves a partially-written final record. The
//! reader treats the first short or checksum-failing record as the end
//! of the journal: everything before it replays, the file is truncated
//! back to the last good byte (so appends resume cleanly), and the cut
//! is reported as a [`TornTail`] for the caller to log — a torn tail is
//! never a boot failure. A record that never reached the disk was never
//! acknowledged (the fsync-before-ack ordering guarantees it), so
//! dropping it loses nothing the client was promised.
//!
//! ## Lifecycle
//!
//! Compaction folds the delta into a freshly persisted frozen index;
//! once that index is durable the journal's records are redundant and
//! [`Journal::truncate`] retires them atomically (write a new empty
//! file, fsync it, rename it over the old one) so a crash between the
//! two steps can only leave the *longer* journal — replaying a mutation
//! that compaction already folded is wasteful, never wrong, because
//! boot replays over the pre-compaction frozen index only when the
//! folded one failed to land.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use wwt_model::TableId;

/// Bytes before the payload: op (1) + payload length (4) + checksum (8).
const RECORD_HEADER_LEN: usize = 13;
/// Payloads above this are corrupt, not real (a table line is ~KBs).
const MAX_PAYLOAD_LEN: u32 = 256 * 1024 * 1024;

const OP_ADD: u8 = 1;
const OP_REMOVE: u8 = 2;

/// FNV-1a over a byte slice — the repo's dependency-free checksum (also
/// used for the manifest's term-dictionary digest).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One journaled live mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A table was ingested; the payload is its one-line JSON
    /// ([`crate::table_to_json`]).
    AddTable(String),
    /// A table was removed (delta eviction or frozen tombstone).
    RemoveTable(TableId),
}

impl JournalRecord {
    fn op(&self) -> u8 {
        match self {
            JournalRecord::AddTable(_) => OP_ADD,
            JournalRecord::RemoveTable(_) => OP_REMOVE,
        }
    }

    fn payload(&self) -> Vec<u8> {
        match self {
            JournalRecord::AddTable(line) => line.as_bytes().to_vec(),
            JournalRecord::RemoveTable(id) => id.0.to_string().into_bytes(),
        }
    }

    fn encode(&self) -> Vec<u8> {
        let payload = self.payload();
        let op = self.op();
        let mut checked = Vec::with_capacity(1 + payload.len());
        checked.push(op);
        checked.extend_from_slice(&payload);
        let checksum = fnv1a64(&checked);
        let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        out.push(op);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&checksum.to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

/// When to fsync appended records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append (and after every batch) — the default.
    /// Acknowledged mutations survive power loss.
    Always,
    /// Never fsync (the OS flushes when it pleases). Acknowledged
    /// mutations survive a process crash but not necessarily power
    /// loss — a benchmarking / bulk-load knob, not a serving default.
    Never,
}

impl FsyncPolicy {
    /// Parses the `--journal-fsync` flag value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => Err(format!(
                "unknown fsync policy {other:?} (expected \"always\" or \"never\")"
            )),
        }
    }

    /// The flag-value spelling of this policy.
    pub fn label(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Never => "never",
        }
    }
}

/// A torn or corrupt tail found while opening a journal: everything from
/// `offset` on was dropped and the file truncated back to `offset`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset of the first unreadable record (the new file length).
    pub offset: u64,
    /// Bytes discarded by the truncation.
    pub dropped_bytes: u64,
    /// Why the tail was unreadable (short header, short payload,
    /// checksum mismatch, unknown op).
    pub reason: String,
}

/// What [`Journal::open`] recovered from an existing file.
#[derive(Debug)]
pub struct JournalReplay {
    /// Every intact record, in append order.
    pub records: Vec<JournalRecord>,
    /// The torn tail, if the file ended mid-record (already truncated
    /// away — the caller's only job is to log it).
    pub torn_tail: Option<TornTail>,
}

/// An append-only, checksummed mutation journal.
///
/// Not internally synchronized: callers serialize appends the same way
/// they serialize the mutations themselves (the service's mutation
/// lock).
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    fsync: FsyncPolicy,
    records: u64,
    bytes: u64,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`, replaying every
    /// intact record already there. A torn tail — a partially-written
    /// final record from a crash mid-append — is truncated away and
    /// reported, never an error; real I/O failures are.
    pub fn open(path: &Path, fsync: FsyncPolicy) -> std::io::Result<(Journal, JournalReplay)> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let (records, good_len, torn_reason) = scan(&raw);
        let torn_tail = if good_len < raw.len() as u64 {
            file.set_len(good_len)?;
            file.sync_all()?;
            Some(TornTail {
                offset: good_len,
                dropped_bytes: raw.len() as u64 - good_len,
                reason: torn_reason.unwrap_or_else(|| "unreadable tail".into()),
            })
        } else {
            None
        };
        file.seek(SeekFrom::Start(good_len))?;
        let journal = Journal {
            path: path.to_path_buf(),
            file,
            fsync,
            records: records.len() as u64,
            bytes: good_len,
        };
        Ok((journal, JournalReplay { records, torn_tail }))
    }

    /// Appends one record and makes it durable per the fsync policy.
    /// Returns only after the bytes are on disk (policy permitting) —
    /// this is the call that must complete before a 202 leaves the
    /// server.
    pub fn append(&mut self, record: &JournalRecord) -> std::io::Result<()> {
        self.append_all(std::slice::from_ref(record))
    }

    /// Appends a batch of records with one write and one fsync — the
    /// durability cost of a batch ingest is one disk flush, not N.
    pub fn append_all(&mut self, records: &[JournalRecord]) -> std::io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let mut buf = Vec::new();
        for r in records {
            buf.extend_from_slice(&r.encode());
        }
        let result = (|| -> std::io::Result<()> {
            // Fault-injection site: a fault here exercises the same
            // rollback path a real short write does, so chaos-armed runs
            // prove acknowledged records survive injected append faults.
            wwt_chaos::io_failpoint(wwt_chaos::JOURNAL_APPEND)?;
            self.file.write_all(&buf)?;
            self.file.flush()?;
            if self.fsync == FsyncPolicy::Always {
                self.file.sync_all()?;
            }
            Ok(())
        })();
        if let Err(e) = result {
            // A failed append may have landed partially; roll the file
            // back to the last durable record so the journal stays
            // well-formed for the appends that follow.
            let _ = self.file.set_len(self.bytes);
            let _ = self.file.seek(SeekFrom::Start(self.bytes));
            return Err(e);
        }
        self.records += records.len() as u64;
        self.bytes += buf.len() as u64;
        Ok(())
    }

    /// Retires every record atomically: writes a new empty journal
    /// beside the old one, fsyncs it, and renames it into place — a
    /// crash at any point leaves either the full old journal or the
    /// empty new one, never a half-truncated file. Called after a
    /// compacted index has been durably persisted.
    pub fn truncate(&mut self) -> std::io::Result<()> {
        let tmp = self.path.with_extension("wal.tmp");
        let empty = File::create(&tmp)?;
        empty.sync_all()?;
        std::fs::rename(&tmp, &self.path)?;
        // Best-effort directory fsync so the rename itself is durable.
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Ok(dir) = File::open(parent) {
                    let _ = dir.sync_all();
                }
            }
        }
        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        self.file.seek(SeekFrom::End(0))?;
        self.records = 0;
        self.bytes = 0;
        Ok(())
    }

    /// Where the journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Intact records currently in the file.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes of intact records currently in the file.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The configured fsync policy.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.fsync
    }
}

/// Scans raw journal bytes into records; returns the records, the byte
/// length of the intact prefix, and — when the prefix is shorter than
/// the input — why the next record was unreadable.
fn scan(raw: &[u8]) -> (Vec<JournalRecord>, u64, Option<String>) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        if pos == raw.len() {
            return (records, pos as u64, None);
        }
        let rest = &raw[pos..];
        if rest.len() < RECORD_HEADER_LEN {
            return (
                records,
                pos as u64,
                Some(format!(
                    "torn record header at offset {pos}: {} of {RECORD_HEADER_LEN} bytes",
                    rest.len()
                )),
            );
        }
        let op = rest[0];
        let payload_len = u32::from_le_bytes(rest[1..5].try_into().unwrap());
        let checksum = u64::from_le_bytes(rest[5..13].try_into().unwrap());
        if payload_len > MAX_PAYLOAD_LEN {
            return (
                records,
                pos as u64,
                Some(format!(
                    "corrupt record at offset {pos}: implausible payload length {payload_len}"
                )),
            );
        }
        let payload_len = payload_len as usize;
        if rest.len() < RECORD_HEADER_LEN + payload_len {
            return (
                records,
                pos as u64,
                Some(format!(
                    "torn record payload at offset {pos}: {} of {payload_len} bytes",
                    rest.len() - RECORD_HEADER_LEN
                )),
            );
        }
        let payload = &rest[RECORD_HEADER_LEN..RECORD_HEADER_LEN + payload_len];
        let mut checked = Vec::with_capacity(1 + payload_len);
        checked.push(op);
        checked.extend_from_slice(payload);
        if fnv1a64(&checked) != checksum {
            return (
                records,
                pos as u64,
                Some(format!("checksum mismatch at offset {pos}")),
            );
        }
        let record = match op {
            OP_ADD => match String::from_utf8(payload.to_vec()) {
                Ok(line) => JournalRecord::AddTable(line),
                Err(_) => {
                    return (
                        records,
                        pos as u64,
                        Some(format!("non-utf8 add payload at offset {pos}")),
                    )
                }
            },
            OP_REMOVE => {
                let id = std::str::from_utf8(payload)
                    .ok()
                    .and_then(|s| s.parse::<u32>().ok());
                match id {
                    Some(id) => JournalRecord::RemoveTable(TableId(id)),
                    None => {
                        return (
                            records,
                            pos as u64,
                            Some(format!("malformed remove payload at offset {pos}")),
                        )
                    }
                }
            }
            other => {
                return (
                    records,
                    pos as u64,
                    Some(format!("unknown op {other} at offset {pos}")),
                )
            }
        };
        records.push(record);
        pos += RECORD_HEADER_LEN + payload_len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "wwt-journal-{}-{name}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        p
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::AddTable(r#"{"id":1,"url":"u"}"#.into()),
            JournalRecord::AddTable(r#"{"id":2,"url":"v"}"#.into()),
            JournalRecord::RemoveTable(TableId(1)),
        ]
    }

    #[test]
    fn roundtrips_records_in_append_order() {
        let path = tmp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, replay) = Journal::open(&path, FsyncPolicy::Always).unwrap();
            assert!(replay.records.is_empty());
            assert!(replay.torn_tail.is_none());
            for r in sample_records() {
                j.append(&r).unwrap();
            }
            assert_eq!(j.records(), 3);
            assert!(j.bytes() > 0);
        }
        let (j, replay) = Journal::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(replay.records, sample_records());
        assert!(replay.torn_tail.is_none());
        assert_eq!(j.records(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn batch_append_equals_single_appends() {
        let a = tmp_path("batch-a");
        let b = tmp_path("batch-b");
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
        let (mut ja, _) = Journal::open(&a, FsyncPolicy::Never).unwrap();
        let (mut jb, _) = Journal::open(&b, FsyncPolicy::Never).unwrap();
        let records = sample_records();
        for r in &records {
            ja.append(r).unwrap();
        }
        jb.append_all(&records).unwrap();
        drop((ja, jb));
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        std::fs::remove_file(&a).unwrap();
        std::fs::remove_file(&b).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = tmp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = Journal::open(&path, FsyncPolicy::Always).unwrap();
            for r in sample_records() {
                j.append(&r).unwrap();
            }
        }
        // Simulate a crash mid-append: chop bytes off the final record.
        let full = std::fs::read(&path).unwrap();
        let torn_len = full.len() as u64 - 5;
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(torn_len).unwrap();
        drop(f);
        let (mut j, replay) = Journal::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(replay.records, sample_records()[..2].to_vec());
        let torn = replay.torn_tail.expect("torn tail must be reported");
        assert!(torn.dropped_bytes > 0);
        assert!(torn.reason.contains("torn"), "reason: {}", torn.reason);
        // The file was truncated back to the last good record, so a new
        // append lands cleanly after it.
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            torn.offset,
            "file truncated to the intact prefix"
        );
        j.append(&JournalRecord::RemoveTable(TableId(2))).unwrap();
        drop(j);
        let (_, replay) = Journal::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(replay.records.len(), 3);
        assert_eq!(
            replay.records.last(),
            Some(&JournalRecord::RemoveTable(TableId(2)))
        );
        assert!(replay.torn_tail.is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_record_cuts_the_journal_there() {
        let path = tmp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = Journal::open(&path, FsyncPolicy::Always).unwrap();
            for r in sample_records() {
                j.append(&r).unwrap();
            }
        }
        // Flip one payload byte of the second record.
        let mut raw = std::fs::read(&path).unwrap();
        let first_len = sample_records()[0].encode().len();
        raw[first_len + RECORD_HEADER_LEN] ^= 0xff;
        std::fs::write(&path, &raw).unwrap();
        let (_, replay) = Journal::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(replay.records, sample_records()[..1].to_vec());
        let torn = replay.torn_tail.expect("corruption must be reported");
        assert!(torn.reason.contains("checksum"), "reason: {}", torn.reason);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_retires_all_records() {
        let path = tmp_path("truncate");
        let _ = std::fs::remove_file(&path);
        let (mut j, _) = Journal::open(&path, FsyncPolicy::Always).unwrap();
        j.append_all(&sample_records()).unwrap();
        assert_eq!(j.records(), 3);
        j.truncate().unwrap();
        assert_eq!(j.records(), 0);
        assert_eq!(j.bytes(), 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        // Appends keep working on the fresh file.
        j.append(&JournalRecord::RemoveTable(TableId(9))).unwrap();
        drop(j);
        let (_, replay) = Journal::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(replay.records, vec![JournalRecord::RemoveTable(TableId(9))]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fsync_policy_parses_and_labels() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Ok(FsyncPolicy::Never));
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(FsyncPolicy::Always.label(), "always");
        assert_eq!(FsyncPolicy::Never.label(), "never");
    }
}
