//! Min-cost max-flow (successive shortest paths with Bellman–Ford),
//! the engine behind §4.1's bipartite matching and §4.2.3's max-marginals.
//!
//! Costs are `f64` (they come from model potentials), capacities integral.
//! The final residual graph stays accessible: [`MinCostFlow::residual_dist_from`]
//! runs the Bellman–Ford pass Figure 3 needs.

/// Min-cost max-flow solver over a directed graph.
///
/// Edges are added in pairs (forward + residual reverse edge); the id
/// returned by [`add_edge`](Self::add_edge) refers to the forward edge.
#[derive(Debug, Clone)]
pub struct MinCostFlow {
    n: usize,
    to: Vec<usize>,
    cap: Vec<i64>,
    orig_cap: Vec<i64>,
    cost: Vec<f64>,
    adj: Vec<Vec<usize>>,
}

impl MinCostFlow {
    /// A network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        MinCostFlow {
            n,
            to: Vec::new(),
            cap: Vec::new(),
            orig_cap: Vec::new(),
            cost: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Adds a directed edge `u → v`; returns its edge id.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: i64, cost: f64) -> usize {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        assert!(cap >= 0, "capacity must be non-negative");
        let id = self.to.len();
        self.to.push(v);
        self.cap.push(cap);
        self.orig_cap.push(cap);
        self.cost.push(cost);
        self.adj[u].push(id);
        // Reverse edge.
        self.to.push(u);
        self.cap.push(0);
        self.orig_cap.push(0);
        self.cost.push(-cost);
        self.adj[v].push(id + 1);
        id
    }

    /// Flow currently on forward edge `e`.
    pub fn flow(&self, e: usize) -> i64 {
        self.orig_cap[e] - self.cap[e]
    }

    /// Runs min-cost max-flow from `s` to `t`. Returns `(flow, cost)`.
    /// Incremental: calling again after adding edges continues from the
    /// current flow.
    pub fn run(&mut self, s: usize, t: usize) -> (i64, f64) {
        let mut total_flow = 0i64;
        let mut total_cost = 0.0f64;
        loop {
            // Bellman–Ford shortest path in the residual graph.
            let (dist, pred) = self.bellman_ford(s);
            if dist[t].is_infinite() {
                break;
            }
            // Bottleneck along the path.
            let mut bottleneck = i64::MAX;
            let mut v = t;
            while v != s {
                let e = pred[v].expect("path edge");
                bottleneck = bottleneck.min(self.cap[e]);
                v = self.to[e ^ 1];
            }
            debug_assert!(bottleneck > 0);
            let mut v = t;
            while v != s {
                let e = pred[v].expect("path edge");
                self.cap[e] -= bottleneck;
                self.cap[e ^ 1] += bottleneck;
                total_cost += self.cost[e] * bottleneck as f64;
                v = self.to[e ^ 1];
            }
            total_flow += bottleneck;
        }
        (total_flow, total_cost)
    }

    /// Bellman–Ford over residual edges from `src`: returns
    /// `(distances, predecessor edge ids)`. Distances are `f64::INFINITY`
    /// for unreachable nodes. This is the primitive Figure 3 uses on the
    /// final residual graph (edge costs can be negative; the residual
    /// graph of an optimal flow has no negative cycles).
    pub fn residual_dist_from(&self, src: usize) -> Vec<f64> {
        self.bellman_ford(src).0
    }

    fn bellman_ford(&self, src: usize) -> (Vec<f64>, Vec<Option<usize>>) {
        let mut dist = vec![f64::INFINITY; self.n];
        let mut pred: Vec<Option<usize>> = vec![None; self.n];
        dist[src] = 0.0;
        // SPFA-style queue-based relaxation (equivalent to Bellman–Ford,
        // usually much faster on sparse graphs).
        let mut in_queue = vec![false; self.n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(src);
        in_queue[src] = true;
        let mut relaxations = 0usize;
        let max_relax = self.n.saturating_mul(self.to.len()).max(64);
        while let Some(u) = queue.pop_front() {
            in_queue[u] = false;
            for &e in &self.adj[u] {
                if self.cap[e] <= 0 {
                    continue;
                }
                let v = self.to[e];
                let nd = dist[u] + self.cost[e];
                if nd + 1e-12 < dist[v] {
                    dist[v] = nd;
                    pred[v] = Some(e);
                    relaxations += 1;
                    assert!(
                        relaxations <= max_relax,
                        "negative cycle detected in residual graph"
                    );
                    if !in_queue[v] {
                        queue.push_back(v);
                        in_queue[v] = true;
                    }
                }
            }
        }
        (dist, pred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_path() {
        // s -> a -> t, capacity 3, cost 2 per edge.
        let mut g = MinCostFlow::new(3);
        g.add_edge(0, 1, 3, 2.0);
        g.add_edge(1, 2, 3, 2.0);
        let (f, c) = g.run(0, 2);
        assert_eq!(f, 3);
        assert!((c - 12.0).abs() < 1e-9);
    }

    #[test]
    fn chooses_cheaper_path_first() {
        // Two parallel 1-cap paths, costs 1 and 10; ask for both.
        let mut g = MinCostFlow::new(4);
        let e_cheap = g.add_edge(0, 1, 1, 1.0);
        g.add_edge(1, 3, 1, 0.0);
        let e_dear = g.add_edge(0, 2, 1, 10.0);
        g.add_edge(2, 3, 1, 0.0);
        let (f, c) = g.run(0, 3);
        assert_eq!(f, 2);
        assert!((c - 11.0).abs() < 1e-9);
        assert_eq!(g.flow(e_cheap), 1);
        assert_eq!(g.flow(e_dear), 1);
    }

    #[test]
    fn negative_costs_handled() {
        // Profitable edge (negative cost) must be used.
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 1, 0.0);
        g.add_edge(0, 2, 1, 0.0);
        g.add_edge(1, 3, 1, -5.0);
        g.add_edge(2, 3, 1, 3.0);
        let (f, c) = g.run(0, 3);
        assert_eq!(f, 2);
        assert!((c - (-2.0)).abs() < 1e-9);
    }

    #[test]
    fn rerouting_through_residual() {
        // Classic case where the second augmentation must undo part of the
        // first via a reverse edge.
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 1, 1.0);
        g.add_edge(0, 2, 1, 5.0);
        g.add_edge(1, 2, 1, -4.0);
        g.add_edge(1, 3, 1, 10.0);
        g.add_edge(2, 3, 2, 1.0);
        let (f, c) = g.run(0, 3);
        assert_eq!(f, 2);
        // Optimal: s->1->2->t (1-4+1=-2), s->2->t (5+1=6) => total 4.
        assert!((c - 4.0).abs() < 1e-9, "cost {c}");
    }

    #[test]
    fn disconnected_sink() {
        let mut g = MinCostFlow::new(3);
        g.add_edge(0, 1, 5, 1.0);
        let (f, c) = g.run(0, 2);
        assert_eq!(f, 0);
        assert_eq!(c, 0.0);
    }

    #[test]
    fn residual_distances_after_flow() {
        let mut g = MinCostFlow::new(3);
        let e = g.add_edge(0, 1, 1, 2.0);
        g.add_edge(1, 2, 1, 0.0);
        g.run(0, 2);
        assert_eq!(g.flow(e), 1);
        // Edge 0->1 is saturated; from node 1 the reverse edge reaches 0
        // at cost -2.
        let d = g.residual_dist_from(1);
        assert!((d[0] - (-2.0)).abs() < 1e-9);
        assert!(d[2].is_infinite()); // 1->2 saturated too
    }

    #[test]
    #[should_panic(expected = "capacity must be non-negative")]
    fn negative_capacity_rejected() {
        let mut g = MinCostFlow::new(2);
        g.add_edge(0, 1, -1, 0.0);
    }

    #[test]
    fn incremental_runs_accumulate() {
        let mut g = MinCostFlow::new(3);
        g.add_edge(0, 1, 1, 1.0);
        g.add_edge(1, 2, 1, 1.0);
        let (f1, _) = g.run(0, 2);
        assert_eq!(f1, 1);
        // Add parallel capacity, run again: only the new unit flows.
        g.add_edge(0, 1, 1, 1.0);
        g.add_edge(1, 2, 1, 1.0);
        let (f2, _) = g.run(0, 2);
        assert_eq!(f2, 1);
    }
}
