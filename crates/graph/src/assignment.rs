//! Generalized maximum-weight bipartite matching (paper §4.1) and
//! max-marginals (paper §4.2.3, Figure 3).
//!
//! *Items* (table columns) have unit capacity; *bins* (query labels and
//! `na`) have arbitrary capacities. Every item must be assigned to exactly
//! one bin; the assignment maximizes the total weight. Forbidden pairs are
//! expressed with `f64::NEG_INFINITY` weights.
//!
//! [`max_marginals`] computes, for every `(item, bin)` pair, the best total
//! weight of a *complete* assignment forced to place `item` in `bin` — the
//! quantity `µ_tc(ℓ)` of Eq. 10 — using the paper's trick: one optimal
//! matching on a capacity-balanced network, then one shortest-path pass per
//! bin over the final residual graph.

use crate::mincost::MinCostFlow;

/// A generalized assignment problem instance.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// Capacity of each bin.
    pub bin_caps: Vec<u32>,
    /// `weights[item][bin]`; `NEG_INFINITY` marks forbidden pairs.
    pub weights: Vec<Vec<f64>>,
}

/// An optimal assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignmentSolution {
    /// For each item, the bin it is assigned to.
    pub assignment: Vec<usize>,
    /// Total weight.
    pub total: f64,
}

impl Assignment {
    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.weights.len()
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.bin_caps.len()
    }

    fn check(&self) {
        for w in &self.weights {
            assert_eq!(w.len(), self.n_bins(), "weight row width != n_bins");
        }
    }

    /// Total weight of a concrete assignment (`NEG_INFINITY` if any pair is
    /// forbidden). Does not check capacities.
    pub fn score(&self, assignment: &[usize]) -> f64 {
        assignment
            .iter()
            .enumerate()
            .map(|(i, &b)| self.weights[i][b])
            .sum()
    }
}

/// Node layout of the flow network.
struct Layout {
    s: usize,
    t: usize,
    dummy: Option<usize>,
    n_items: usize,
}

impl Layout {
    fn item(&self, i: usize) -> usize {
        2 + i
    }
    fn bin(&self, b: usize) -> usize {
        2 + self.n_items + b
    }
}

/// Builds the (optionally capacity-balanced) flow network.
fn build_network(p: &Assignment, balanced: bool) -> (MinCostFlow, Layout) {
    let n_items = p.n_items();
    let n_bins = p.n_bins();
    let total_cap: i64 = p.bin_caps.iter().map(|&c| c as i64).sum();
    let deficit = total_cap - n_items as i64;
    let use_dummy = balanced && deficit > 0;
    let n_nodes = 2 + n_items + n_bins + usize::from(use_dummy);
    let mut g = MinCostFlow::new(n_nodes);
    let layout = Layout {
        s: 0,
        t: 1,
        dummy: use_dummy.then_some(n_nodes - 1),
        n_items,
    };
    for i in 0..n_items {
        g.add_edge(layout.s, layout.item(i), 1, 0.0);
        for b in 0..n_bins {
            let w = p.weights[i][b];
            if w.is_finite() && p.bin_caps[b] > 0 {
                g.add_edge(layout.item(i), layout.bin(b), 1, -w);
            }
        }
    }
    for b in 0..n_bins {
        g.add_edge(layout.bin(b), layout.t, p.bin_caps[b] as i64, 0.0);
    }
    if let Some(d) = layout.dummy {
        g.add_edge(layout.s, d, deficit, 0.0);
        for b in 0..n_bins {
            if p.bin_caps[b] > 0 {
                g.add_edge(d, layout.bin(b), p.bin_caps[b] as i64, 0.0);
            }
        }
    }
    (g, layout)
}

/// Reads each item's assigned bin from edge flows.
fn read_assignment(g: &MinCostFlow, p: &Assignment, _layout: &Layout) -> Option<Vec<usize>> {
    // Edge ids are deterministic: reconstruct by replaying add order.
    let mut assignment = vec![usize::MAX; p.n_items()];
    let mut e = 0usize;
    for i in 0..p.n_items() {
        e += 2; // s -> item edge (fwd + rev)
        for b in 0..p.n_bins() {
            let w = p.weights[i][b];
            if w.is_finite() && p.bin_caps[b] > 0 {
                if g.flow(e) > 0 {
                    assignment[i] = b;
                }
                e += 2;
            }
        }
    }
    if assignment.contains(&usize::MAX) {
        None
    } else {
        Some(assignment)
    }
}

/// Solves the assignment problem. Returns `None` when no complete
/// assignment exists (insufficient capacity or forbidden structure).
pub fn solve_assignment(p: &Assignment) -> Option<AssignmentSolution> {
    p.check();
    if p.n_items() == 0 {
        return Some(AssignmentSolution {
            assignment: vec![],
            total: 0.0,
        });
    }
    let (mut g, layout) = build_network(p, false);
    let (flow, cost) = g.run(layout.s, layout.t);
    if flow < p.n_items() as i64 {
        return None;
    }
    let assignment = read_assignment(&g, p, &layout)?;
    Some(AssignmentSolution {
        assignment,
        total: -cost,
    })
}

/// Computes all max-marginals `µ[item][bin]`: the best total weight of a
/// complete assignment with `item` forced into `bin`
/// (`NEG_INFINITY` when infeasible). Implements Figure 3 of the paper.
pub fn max_marginals(p: &Assignment) -> Vec<Vec<f64>> {
    p.check();
    let n_items = p.n_items();
    let n_bins = p.n_bins();
    let mut mu = vec![vec![f64::NEG_INFINITY; n_bins]; n_items];
    if n_items == 0 {
        return mu;
    }
    let total_cap: i64 = p.bin_caps.iter().map(|&c| c as i64).sum();
    if total_cap < n_items as i64 {
        return mu; // no complete assignment at all
    }
    let (mut g, layout) = build_network(p, true);
    let (flow, cost) = g.run(layout.s, layout.t);
    if flow < total_cap {
        // Balanced network could not saturate: some item has no feasible
        // bin. Fall back: no marginals.
        return mu;
    }
    let opt = -cost;
    // One Bellman–Ford per bin over the final residual graph (Figure 3).
    for b in 0..n_bins {
        if p.bin_caps[b] == 0 {
            continue;
        }
        let dist = g.residual_dist_from(layout.bin(b));
        for (i, mu_i) in mu.iter_mut().enumerate() {
            let w = p.weights[i][b];
            if !w.is_finite() {
                continue;
            }
            let d = dist[layout.item(i)];
            if d.is_finite() {
                // µ = Opt − d(bin, item) − cost(item, bin); cost = −w.
                mu_i[b] = opt - d + w;
            }
        }
    }
    mu
}

/// Brute-force reference implementations (exponential; for validation and
/// tiny instances only).
pub mod brute {
    use super::{Assignment, AssignmentSolution};

    fn feasible(p: &Assignment, assignment: &[usize]) -> bool {
        let mut used = vec![0u32; p.n_bins()];
        for (&b, ()) in assignment.iter().zip(std::iter::repeat(())) {
            used[b] += 1;
            if used[b] > p.bin_caps[b] {
                return false;
            }
        }
        assignment
            .iter()
            .enumerate()
            .all(|(i, &b)| p.weights[i][b].is_finite())
    }

    fn enumerate(
        p: &Assignment,
        i: usize,
        cur: &mut Vec<usize>,
        best: &mut Option<AssignmentSolution>,
        force: Option<(usize, usize)>,
    ) {
        if i == p.n_items() {
            if feasible(p, cur) {
                let total = p.score(cur);
                if best.as_ref().map(|b| total > b.total).unwrap_or(true) {
                    *best = Some(AssignmentSolution {
                        assignment: cur.clone(),
                        total,
                    });
                }
            }
            return;
        }
        let bins: Vec<usize> = match force {
            Some((fi, fb)) if fi == i => vec![fb],
            _ => (0..p.n_bins()).collect(),
        };
        for b in bins {
            cur.push(b);
            enumerate(p, i + 1, cur, best, force);
            cur.pop();
        }
    }

    /// Exhaustive optimal assignment.
    pub fn solve(p: &Assignment) -> Option<AssignmentSolution> {
        let mut best = None;
        enumerate(p, 0, &mut Vec::new(), &mut best, None);
        best
    }

    /// Exhaustive max-marginals.
    pub fn max_marginals(p: &Assignment) -> Vec<Vec<f64>> {
        let mut mu = vec![vec![f64::NEG_INFINITY; p.n_bins()]; p.n_items()];
        for i in 0..p.n_items() {
            for b in 0..p.n_bins() {
                let mut best = None;
                enumerate(p, 0, &mut Vec::new(), &mut best, Some((i, b)));
                if let Some(s) = best {
                    mu[i][b] = s.total;
                }
            }
        }
        mu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NI: f64 = f64::NEG_INFINITY;

    #[test]
    fn unit_capacity_matching() {
        // Classic 2x2: diagonal is optimal.
        let p = Assignment {
            bin_caps: vec![1, 1],
            weights: vec![vec![5.0, 1.0], vec![1.0, 5.0]],
        };
        let s = solve_assignment(&p).unwrap();
        assert_eq!(s.assignment, vec![0, 1]);
        assert!((s.total - 10.0).abs() < 1e-9);
    }

    #[test]
    fn conflict_resolved_globally() {
        // Both items prefer bin 0 (cap 1); optimal sacrifices item 0.
        let p = Assignment {
            bin_caps: vec![1, 1],
            weights: vec![vec![5.0, 4.0], vec![5.0, 0.0]],
        };
        let s = solve_assignment(&p).unwrap();
        assert_eq!(s.assignment, vec![1, 0]);
        assert!((s.total - 9.0).abs() < 1e-9);
    }

    #[test]
    fn multi_capacity_bin() {
        let p = Assignment {
            bin_caps: vec![3],
            weights: vec![vec![1.0], vec![2.0], vec![3.0]],
        };
        let s = solve_assignment(&p).unwrap();
        assert_eq!(s.assignment, vec![0, 0, 0]);
        assert!((s.total - 6.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_capacity() {
        let p = Assignment {
            bin_caps: vec![1],
            weights: vec![vec![1.0], vec![1.0]],
        };
        assert!(solve_assignment(&p).is_none());
    }

    #[test]
    fn forbidden_pairs_respected() {
        let p = Assignment {
            bin_caps: vec![1, 1],
            weights: vec![vec![NI, 2.0], vec![NI, 3.0]],
        };
        // Both items can only use bin 1 (cap 1) -> infeasible.
        assert!(solve_assignment(&p).is_none());
    }

    #[test]
    fn negative_weights_still_assigned() {
        // Complete assignment is required even at negative weight.
        let p = Assignment {
            bin_caps: vec![1, 1],
            weights: vec![vec![-2.0, -5.0], vec![-1.0, -1.0]],
        };
        let s = solve_assignment(&p).unwrap();
        assert_eq!(s.assignment, vec![0, 1]);
        assert!((s.total - (-3.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_problem() {
        let p = Assignment {
            bin_caps: vec![2],
            weights: vec![],
        };
        let s = solve_assignment(&p).unwrap();
        assert!(s.assignment.is_empty());
        assert_eq!(s.total, 0.0);
        assert!(max_marginals(&p).is_empty());
    }

    #[test]
    fn matches_brute_force_on_fixed_instances() {
        let instances = vec![
            Assignment {
                bin_caps: vec![1, 1, 3],
                weights: vec![
                    vec![2.0, 1.0, 0.0],
                    vec![1.5, 2.5, 0.0],
                    vec![0.5, 0.5, 0.0],
                    vec![3.0, NI, 0.0],
                ],
            },
            Assignment {
                bin_caps: vec![1, 2],
                weights: vec![vec![-1.0, -2.0], vec![4.0, 1.0], vec![NI, 0.5]],
            },
        ];
        for p in instances {
            let fast = solve_assignment(&p).unwrap();
            let slow = brute::solve(&p).unwrap();
            assert!(
                (fast.total - slow.total).abs() < 1e-9,
                "fast {} vs brute {}",
                fast.total,
                slow.total
            );
        }
    }

    #[test]
    fn max_marginals_match_brute_force() {
        let p = Assignment {
            bin_caps: vec![1, 1, 4],
            weights: vec![vec![2.0, 1.0, 0.0], vec![1.5, 2.5, 0.0], vec![0.5, NI, 0.0]],
        };
        let fast = max_marginals(&p);
        let slow = brute::max_marginals(&p);
        for i in 0..p.n_items() {
            for b in 0..p.n_bins() {
                let (f, s) = (fast[i][b], slow[i][b]);
                if s.is_finite() {
                    assert!((f - s).abs() < 1e-9, "mu[{i}][{b}]: fast {f} vs brute {s}");
                } else {
                    assert!(!f.is_finite(), "mu[{i}][{b}] should be -inf, got {f}");
                }
            }
        }
    }

    #[test]
    fn max_marginal_of_optimal_choice_equals_optimum() {
        let p = Assignment {
            bin_caps: vec![1, 1, 2],
            weights: vec![vec![3.0, 0.0, 0.0], vec![0.0, 3.0, 0.0]],
        };
        let s = solve_assignment(&p).unwrap();
        let mu = max_marginals(&p);
        for (i, &b) in s.assignment.iter().enumerate() {
            assert!((mu[i][b] - s.total).abs() < 1e-9);
        }
        // Forcing a non-optimal bin must not beat the optimum.
        for i in 0..p.n_items() {
            for b in 0..p.n_bins() {
                assert!(mu[i][b] <= s.total + 1e-9);
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Flow-based solver agrees with brute force on random instances.
        #[test]
        fn prop_solver_matches_brute(
            n_items in 1usize..5,
            n_bins in 1usize..4,
            seed in 0u64..10_000,
        ) {
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) * 8.0 - 2.0
            };
            let bin_caps: Vec<u32> = (0..n_bins).map(|_| (next().abs() as u32 % 3) + 1).collect();
            let weights: Vec<Vec<f64>> = (0..n_items)
                .map(|_| (0..n_bins).map(|_| {
                    let w = next();
                    if w < -1.5 { f64::NEG_INFINITY } else { (w * 4.0).round() / 4.0 }
                }).collect())
                .collect();
            let p = Assignment { bin_caps, weights };
            let fast = solve_assignment(&p);
            let slow = brute::solve(&p);
            match (fast, slow) {
                (Some(f), Some(s)) => proptest::prop_assert!((f.total - s.total).abs() < 1e-6,
                    "fast {} brute {} on {:?}", f.total, s.total, p),
                (None, None) => {}
                (f, s) => proptest::prop_assert!(false, "feasibility mismatch {f:?} vs {s:?} on {p:?}"),
            }
        }

        /// Residual-graph max-marginals agree with brute force.
        #[test]
        fn prop_max_marginals_match_brute(
            n_items in 1usize..4,
            n_bins in 1usize..4,
            seed in 0u64..10_000,
        ) {
            let mut state = seed.wrapping_add(77);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) * 8.0 - 2.0
            };
            let bin_caps: Vec<u32> = (0..n_bins).map(|_| (next().abs() as u32 % 3) + 1).collect();
            let weights: Vec<Vec<f64>> = (0..n_items)
                .map(|_| (0..n_bins).map(|_| {
                    let w = next();
                    if w < -1.5 { f64::NEG_INFINITY } else { (w * 4.0).round() / 4.0 }
                }).collect())
                .collect();
            let p = Assignment { bin_caps, weights };
            let fast = max_marginals(&p);
            let slow = brute::max_marginals(&p);
            for i in 0..p.n_items() {
                for b in 0..p.n_bins() {
                    if slow[i][b].is_finite() {
                        proptest::prop_assert!((fast[i][b] - slow[i][b]).abs() < 1e-6,
                            "mu[{}][{}]: fast {} brute {} on {:?}", i, b, fast[i][b], slow[i][b], p);
                    } else {
                        proptest::prop_assert!(!fast[i][b].is_finite(),
                            "mu[{}][{}] should be -inf on {:?}", i, b, p);
                    }
                }
            }
        }
    }
}
