//! # wwt-graph
//!
//! Graph-algorithm and MRF substrate for the WWT column mapper (paper §4).
//! Everything here is generic over problem structure and independently
//! tested against brute force; the core crate assembles these pieces into
//! the paper's inference algorithms.
//!
//! * [`mincost`] — min-cost max-flow with Bellman–Ford successive shortest
//!   paths, exposing the final residual graph (needed by Figure 3's
//!   max-marginal computation).
//! * [`assignment`] — generalized maximum-weight bipartite matching with
//!   bin capacities (§4.1) and all-pairs max-marginals via residual-graph
//!   shortest paths (§4.2.3).
//! * [`maxflow`] — Dinic max-flow / min-cut over `f64` capacities with
//!   incremental capacity raises (needed by the constrained-cut loop).
//! * [`constrained_cut`] — the constrained minimum s-t cut of Figure 4
//!   (at most one vertex per group on the t side).
//! * [`mrf`] — pairwise MRF with score-maximization semantics and a brute
//!   force MAP solver for validation.
//! * [`alpha`] — α-expansion (Boykov–Veksler–Zabih) with the paper's
//!   modification: mutex-constrained moves via [`constrained_cut`].
//! * [`bp`] — loopy max-product belief propagation (log domain, damped).
//! * [`trws`] — sequential tree-reweighted message passing (TRW-S).

pub mod alpha;
pub mod assignment;
pub mod bp;
pub mod constrained_cut;
pub mod maxflow;
pub mod mincost;
pub mod mrf;
pub mod trws;

pub use alpha::{alpha_expansion, AlphaOptions};
pub use assignment::{max_marginals, solve_assignment, Assignment, AssignmentSolution};
pub use bp::{loopy_bp, BpOptions};
pub use constrained_cut::constrained_min_cut;
pub use maxflow::MaxFlowGraph;
pub use mincost::MinCostFlow;
pub use mrf::PairwiseMrf;
pub use trws::{trws, TrwsOptions};

/// Finite stand-in for `−∞` score (forbidden configuration). Using a large
/// finite value keeps message passing free of `NaN` from `∞ − ∞`.
pub const NEG_INF_SCORE: f64 = -1.0e12;
