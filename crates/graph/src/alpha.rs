//! α-expansion (Boykov–Veksler–Zabih) for score maximization, with the
//! paper's modification for the `mutex` constraint (§4.3): expansion moves
//! on query-column labels are solved as *constrained* min s-t cuts so that
//! at most one column per table switches to (or keeps) the label α.
//!
//! Score maximization is handled as energy minimization with
//! `E = −score`. Each move builds the standard binary-cut graph with the
//! decomposition
//!
//! ```text
//! E(xu,xv) = a + (c−a)·xu + (d−c)·xv + (b+c−a−d)·(1−xu)·xv
//! ```
//!
//! where `x = 1` means "take α" (t side of the cut). Edge terms that
//! violate submodularity (`b+c−a−d < 0`) are truncated to zero — the
//! paper's potentials are metric, so truncation only absorbs floating-point
//! slack.

use crate::constrained_cut::{constrained_min_cut, ConstrainedCutProblem};
use crate::maxflow::MaxFlowGraph;
use crate::mrf::PairwiseMrf;

/// Options for [`alpha_expansion`].
#[derive(Debug, Clone, Default)]
pub struct AlphaOptions {
    /// Maximum full rounds over the label set (a round with no accepted
    /// move terminates earlier). 0 means "until convergence" (bounded
    /// internally at 20).
    pub max_rounds: usize,
    /// Variable groups subject to the mutex constraint (e.g. the columns of
    /// one table).
    pub mutex_groups: Vec<Vec<usize>>,
    /// Labels α whose expansion moves must respect the group constraint
    /// (the query-column labels `1..q`; `na`/`nr` moves are unconstrained).
    pub constrained_labels: Vec<usize>,
}

/// Runs α-expansion from `init`; returns the final labeling. The score of
/// the result is never below the score of `init`.
pub fn alpha_expansion(mrf: &PairwiseMrf, init: Vec<usize>, opts: &AlphaOptions) -> Vec<usize> {
    assert_eq!(init.len(), mrf.n_vars());
    let max_rounds = if opts.max_rounds == 0 {
        20
    } else {
        opts.max_rounds
    };
    let mut current = init;
    let mut current_score = mrf.score(&current);
    for _round in 0..max_rounds {
        let mut improved = false;
        for alpha in 0..mrf.n_labels() {
            let candidate = expansion_move(mrf, &current, alpha, opts);
            let cand_score = mrf.score(&candidate);
            if cand_score > current_score + 1e-9 {
                current = candidate;
                current_score = cand_score;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    current
}

/// Computes the optimal (or constraint-repaired) α-move from `y`.
fn expansion_move(mrf: &PairwiseMrf, y: &[usize], alpha: usize, opts: &AlphaOptions) -> Vec<usize> {
    let n = mrf.n_vars();
    // Node layout: 0 = s, 1 = t, variable i -> 2 + i.
    let s = 0;
    let t = 1;
    let var = |i: usize| 2 + i;
    // Accumulated terminal capacities per variable.
    let mut cap_s = vec![0.0f64; n]; // cost of x=1 (take α)
    let mut cap_t = vec![0.0f64; n]; // cost of x=0 (keep)
    let mut graph = MaxFlowGraph::new(2 + n);
    // Unary terms: E_i(0) = −θ(i, y_i), E_i(1) = −θ(i, α).
    // A variable already labeled α keeps α on either side; we pin it to the
    // t side so the group (mutex) constraint counts it, and so the repair
    // loop of Figure 4 sees a prohibitive cost for forcing it to s.
    const PIN_ALPHA: f64 = 1.0e12;
    for i in 0..n {
        if y[i] == alpha {
            cap_t[i] += PIN_ALPHA;
            continue;
        }
        let e0 = -mrf.node_pot(i, y[i]);
        let e1 = -mrf.node_pot(i, alpha);
        let base = e0.min(e1);
        cap_t[i] += e0 - base;
        cap_s[i] += e1 - base;
    }
    // Pairwise terms.
    let mut inner_edges: Vec<(usize, usize, f64)> = Vec::new();
    for e in mrf.edges() {
        let (u, v) = (e.u, e.v);
        let a = -mrf_edge(mrf, e, y[u], y[v]);
        let b = -mrf_edge(mrf, e, y[u], alpha);
        let c = -mrf_edge(mrf, e, alpha, y[v]);
        let d = -mrf_edge(mrf, e, alpha, alpha);
        // (c−a) on xu.
        let cu = c - a;
        if cu >= 0.0 {
            cap_s[u] += cu;
        } else {
            cap_t[u] += -cu;
        }
        // (d−c) on xv.
        let cv = d - c;
        if cv >= 0.0 {
            cap_s[v] += cv;
        } else {
            cap_t[v] += -cv;
        }
        // (b+c−a−d)(1−xu)xv: edge u→v, truncated at 0.
        let w = (b + c - a - d).max(0.0);
        if w > 0.0 {
            inner_edges.push((u, v, w));
        }
    }
    // Terminal edges (always created so the constrained cut can raise the
    // s-edge of any group member).
    let s_edges: Vec<usize> = (0..n)
        .map(|i| graph.add_edge(s, var(i), cap_s[i]))
        .collect();
    for i in 0..n {
        graph.add_edge(var(i), t, cap_t[i]);
    }
    for (u, v, w) in inner_edges {
        graph.add_edge(var(u), var(v), w);
    }

    let constrained = opts.constrained_labels.contains(&alpha) && !opts.mutex_groups.is_empty();
    let t_side: Vec<bool> = if constrained {
        let groups: Vec<Vec<(usize, usize)>> = opts
            .mutex_groups
            .iter()
            .map(|g| g.iter().map(|&i| (var(i), s_edges[i])).collect())
            .collect();
        constrained_min_cut(ConstrainedCutProblem {
            graph: &mut graph,
            s,
            t,
            groups,
        })
    } else {
        graph.max_flow(s, t);
        graph.s_side(s).iter().map(|&x| !x).collect()
    };

    (0..n)
        .map(|i| if t_side[var(i)] { alpha } else { y[i] })
        .collect()
}

#[inline]
fn mrf_edge(mrf: &PairwiseMrf, e: &crate::mrf::MrfEdge, lu: usize, lv: usize) -> f64 {
    e.pot[lu * mrf.n_labels() + lv]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> AlphaOptions {
        AlphaOptions::default()
    }

    #[test]
    fn unary_only_reaches_pointwise_optimum() {
        let mrf = PairwiseMrf::new(vec![
            vec![0.0, 3.0, 1.0],
            vec![2.0, 0.0, 0.0],
            vec![0.0, 0.0, 5.0],
        ]);
        let out = alpha_expansion(&mrf, vec![0, 0, 0], &opts());
        assert_eq!(out, vec![1, 0, 2]);
    }

    #[test]
    fn attractive_potts_matches_brute_force() {
        // Two strong nodes pull a weak middle node to their label.
        let mut mrf = PairwiseMrf::new(vec![vec![4.0, 0.0], vec![0.4, 0.5], vec![4.0, 0.0]]);
        mrf.add_potts_edge(0, 1, 1.0, &[]);
        mrf.add_potts_edge(1, 2, 1.0, &[]);
        let out = alpha_expansion(&mrf, vec![1, 1, 1], &opts());
        let (brute, _) = mrf.brute_force_map();
        assert_eq!(out, brute);
        assert_eq!(out, vec![0, 0, 0]);
    }

    #[test]
    fn never_decreases_score() {
        // Pseudo-random models; expansion result must score >= init.
        let mut state = 7u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 4.0 - 1.0
        };
        for _ in 0..20 {
            let n = 4;
            let l = 3;
            let node = (0..n)
                .map(|_| (0..l).map(|_| next()).collect::<Vec<_>>())
                .collect::<Vec<_>>();
            let mut mrf = PairwiseMrf::new(node);
            for u in 0..n {
                for v in (u + 1)..n {
                    mrf.add_potts_edge(u, v, next().abs(), &[]);
                }
            }
            let init = vec![0; n];
            let init_score = mrf.score(&init);
            let out = alpha_expansion(&mrf, init, &opts());
            assert!(mrf.score(&out) >= init_score - 1e-9);
            // And close to brute force on these tiny attractive models.
            let (_, best) = mrf.brute_force_map();
            assert!(
                mrf.score(&out) >= best - 1e-6,
                "out {} best {best}",
                mrf.score(&out)
            );
        }
    }

    #[test]
    fn mutex_constraint_limits_one_per_group() {
        // Three vars in one group all want label 0.
        let mrf = PairwiseMrf::new(vec![vec![5.0, 0.0]; 3]);
        let o = AlphaOptions {
            max_rounds: 5,
            mutex_groups: vec![vec![0, 1, 2]],
            constrained_labels: vec![0],
        };
        let out = alpha_expansion(&mrf, vec![1, 1, 1], &o);
        let count0 = out.iter().filter(|&&l| l == 0).count();
        assert!(count0 <= 1, "mutex violated: {out:?}");
        assert_eq!(count0, 1, "one var should still win label 0: {out:?}");
    }

    #[test]
    fn mutex_counts_vars_already_at_alpha() {
        // Var 0 starts at label 0; var 1 wants to switch to 0 as well.
        let mrf = PairwiseMrf::new(vec![vec![5.0, 0.0], vec![5.0, 0.0]]);
        let o = AlphaOptions {
            max_rounds: 3,
            mutex_groups: vec![vec![0, 1]],
            constrained_labels: vec![0],
        };
        let out = alpha_expansion(&mrf, vec![0, 1], &o);
        assert_eq!(out.iter().filter(|&&l| l == 0).count(), 1, "{out:?}");
    }

    #[test]
    fn hard_negative_edges_respected() {
        // Forbid (0,0): the pair must split labels despite unary pull.
        let mut mrf = PairwiseMrf::new(vec![vec![3.0, 0.0], vec![3.0, 0.0]]);
        let l = 2;
        let mut pot = vec![0.0; l * l];
        pot[0] = crate::NEG_INF_SCORE; // (0,0) forbidden
        mrf.add_edge(0, 1, pot);
        let out = alpha_expansion(&mrf, vec![1, 1], &opts());
        assert!(mrf.is_feasible(&out), "{out:?}");
        assert_ne!(out, vec![0, 0]);
    }

    #[test]
    fn groups_without_constrained_labels_ignored() {
        let mrf = PairwiseMrf::new(vec![vec![5.0, 0.0]; 2]);
        let o = AlphaOptions {
            max_rounds: 3,
            mutex_groups: vec![vec![0, 1]],
            constrained_labels: vec![], // no label constrained
        };
        let out = alpha_expansion(&mrf, vec![1, 1], &o);
        assert_eq!(out, vec![0, 0]);
    }
}
