//! Dinic max-flow / min-cut over `f64` capacities.
//!
//! Used by α-expansion moves (§4.3). Supports *incremental capacity
//! raises*: the constrained-cut loop of Figure 4 repeatedly sets
//! `cap(s,u) = ∞` and pushes the additional flow without recomputing from
//! scratch.

/// A large capacity standing in for `∞` (hard constraints).
pub const INF_CAP: f64 = 1.0e13;

const EPS: f64 = 1e-9;

/// Directed flow network with residual bookkeeping.
#[derive(Debug, Clone)]
pub struct MaxFlowGraph {
    n: usize,
    to: Vec<usize>,
    cap: Vec<f64>,
    adj: Vec<Vec<usize>>,
    total_flow: f64,
}

impl MaxFlowGraph {
    /// A network with `n` nodes.
    pub fn new(n: usize) -> Self {
        MaxFlowGraph {
            n,
            to: Vec::new(),
            cap: Vec::new(),
            adj: vec![Vec::new(); n],
            total_flow: 0.0,
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Adds a directed edge with the given capacity; returns its id.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: f64) -> usize {
        assert!(u < self.n && v < self.n, "endpoint out of range");
        assert!(cap >= 0.0, "capacity must be non-negative, got {cap}");
        let id = self.to.len();
        self.to.push(v);
        self.cap.push(cap);
        self.adj[u].push(id);
        self.to.push(u);
        self.cap.push(0.0);
        self.adj[v].push(id + 1);
        id
    }

    /// Raises the *residual* capacity of edge `e` by `delta` (used to force
    /// vertices to the s side in the constrained cut).
    pub fn raise_cap(&mut self, e: usize, delta: f64) {
        assert!(delta >= 0.0);
        self.cap[e] += delta;
    }

    /// Residual capacity currently on edge `e`.
    pub fn residual(&self, e: usize) -> f64 {
        self.cap[e]
    }

    /// Total flow pushed so far.
    pub fn flow_value(&self) -> f64 {
        self.total_flow
    }

    /// Pushes as much additional flow from `s` to `t` as possible; returns
    /// the *additional* flow. Can be called repeatedly after capacity
    /// raises.
    pub fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        assert!(s < self.n && t < self.n && s != t);
        let mut pushed = 0.0;
        loop {
            let level = self.bfs_levels(s);
            if level[t].is_none() {
                break;
            }
            let mut iter = vec![0usize; self.n];
            loop {
                let f = self.dfs_push(s, t, f64::INFINITY, &level, &mut iter);
                if f <= EPS {
                    break;
                }
                pushed += f;
            }
        }
        self.total_flow += pushed;
        pushed
    }

    fn bfs_levels(&self, s: usize) -> Vec<Option<u32>> {
        let mut level = vec![None; self.n];
        level[s] = Some(0);
        let mut q = std::collections::VecDeque::new();
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &e in &self.adj[u] {
                let v = self.to[e];
                if self.cap[e] > EPS && level[v].is_none() {
                    level[v] = Some(level[u].unwrap() + 1);
                    q.push_back(v);
                }
            }
        }
        level
    }

    fn dfs_push(
        &mut self,
        u: usize,
        t: usize,
        limit: f64,
        level: &[Option<u32>],
        iter: &mut [usize],
    ) -> f64 {
        if u == t {
            return limit;
        }
        while iter[u] < self.adj[u].len() {
            let e = self.adj[u][iter[u]];
            let v = self.to[e];
            let ok = self.cap[e] > EPS
                && matches!((level[u], level[v]), (Some(lu), Some(lv)) if lv == lu + 1);
            if ok {
                let f = self.dfs_push(v, t, limit.min(self.cap[e]), level, iter);
                if f > EPS {
                    self.cap[e] -= f;
                    self.cap[e ^ 1] += f;
                    return f;
                }
            }
            iter[u] += 1;
        }
        0.0
    }

    /// After a max-flow: true for nodes reachable from `s` in the residual
    /// graph (the s side of a minimum cut).
    pub fn s_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.n];
        seen[s] = true;
        let mut q = std::collections::VecDeque::new();
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &e in &self.adj[u] {
                let v = self.to[e];
                if self.cap[e] > EPS && !seen[v] {
                    seen[v] = true;
                    q.push_back(v);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_path() {
        let mut g = MaxFlowGraph::new(3);
        g.add_edge(0, 1, 4.0);
        g.add_edge(1, 2, 2.5);
        assert!((g.max_flow(0, 2) - 2.5).abs() < 1e-9);
        assert!((g.flow_value() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn classic_diamond() {
        // s=0, a=1, b=2, t=3 with cross edge.
        let mut g = MaxFlowGraph::new(4);
        g.add_edge(0, 1, 3.0);
        g.add_edge(0, 2, 2.0);
        g.add_edge(1, 2, 5.0);
        g.add_edge(1, 3, 2.0);
        g.add_edge(2, 3, 3.0);
        assert!((g.max_flow(0, 3) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn min_cut_sides() {
        let mut g = MaxFlowGraph::new(4);
        g.add_edge(0, 1, 10.0);
        g.add_edge(1, 2, 1.0); // bottleneck
        g.add_edge(2, 3, 10.0);
        g.max_flow(0, 3);
        let side = g.s_side(0);
        assert_eq!(side, vec![true, true, false, false]);
    }

    #[test]
    fn incremental_capacity_raise() {
        let mut g = MaxFlowGraph::new(3);
        let e = g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 10.0);
        assert!((g.max_flow(0, 2) - 1.0).abs() < 1e-9);
        g.raise_cap(e, 4.0);
        // Additional flow only.
        assert!((g.max_flow(0, 2) - 4.0).abs() < 1e-9);
        assert!((g.flow_value() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected() {
        let mut g = MaxFlowGraph::new(3);
        g.add_edge(0, 1, 5.0);
        assert_eq!(g.max_flow(0, 2), 0.0);
        let side = g.s_side(0);
        assert!(side[0] && side[1] && !side[2]);
    }

    #[test]
    fn zero_capacity_edges_ignored() {
        let mut g = MaxFlowGraph::new(3);
        g.add_edge(0, 1, 0.0);
        g.add_edge(1, 2, 1.0);
        assert_eq!(g.max_flow(0, 2), 0.0);
    }

    #[test]
    fn flow_conservation_on_random_graph() {
        // Fixed pseudo-random dense graph; check conservation at inner nodes.
        let n = 8;
        let mut g = MaxFlowGraph::new(n);
        let mut caps = Vec::new();
        let mut state = 42u64;
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let c = ((state >> 33) % 7) as f64;
                    if c > 0.0 {
                        let id = g.add_edge(u, v, c);
                        caps.push((u, v, c, id));
                    }
                }
            }
        }
        let f = g.max_flow(0, n - 1);
        assert!(f > 0.0);
        // Net flow at each internal node must be ~0.
        let mut net = vec![0.0; n];
        for &(u, v, c, id) in &caps {
            let flow = c - g.residual(id);
            net[u] -= flow;
            net[v] += flow;
        }
        for node in 1..n - 1 {
            assert!(net[node].abs() < 1e-6, "node {node} net {}", net[node]);
        }
        assert!((net[n - 1] - f).abs() < 1e-6);
    }
}
