//! Pairwise MRF with **score-maximization** semantics.
//!
//! The column-mapping objective (paper Eq. 9) is a sum of node potentials
//! and pairwise edge potentials to *maximize*. This module holds the
//! assembled model; [`crate::alpha`], [`crate::bp`] and [`crate::trws`]
//! run approximate MAP inference on it, and [`PairwiseMrf::brute_force_map`]
//! provides the exact reference for small instances.
//!
//! Hard constraints are encoded as [`crate::NEG_INF_SCORE`] entries.

use crate::NEG_INF_SCORE;

/// A pairwise edge with a dense `L×L` potential table.
#[derive(Debug, Clone)]
pub struct MrfEdge {
    /// First endpoint (row index of the table).
    pub u: usize,
    /// Second endpoint (column index of the table).
    pub v: usize,
    /// `pot[lu * n_labels + lv]` = score of the pair `(lu, lv)`.
    pub pot: Vec<f64>,
}

/// A pairwise Markov random field over `n_vars` variables sharing one label
/// space of size `n_labels`.
#[derive(Debug, Clone)]
pub struct PairwiseMrf {
    n_labels: usize,
    node_pot: Vec<Vec<f64>>,
    edges: Vec<MrfEdge>,
    /// For each variable, indices into `edges` touching it.
    adj: Vec<Vec<usize>>,
}

impl PairwiseMrf {
    /// Creates an MRF from per-variable node potentials (scores).
    ///
    /// # Panics
    /// Panics if rows have inconsistent widths or `n_labels == 0`.
    pub fn new(node_pot: Vec<Vec<f64>>) -> Self {
        let n_labels = node_pot.first().map(Vec::len).unwrap_or(0);
        assert!(n_labels > 0, "need at least one label");
        assert!(
            node_pot.iter().all(|r| r.len() == n_labels),
            "ragged node potentials"
        );
        let n_vars = node_pot.len();
        PairwiseMrf {
            n_labels,
            node_pot,
            edges: Vec::new(),
            adj: vec![Vec::new(); n_vars],
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.node_pot.len()
    }

    /// Number of labels.
    pub fn n_labels(&self) -> usize {
        self.n_labels
    }

    /// Node potential θ(v, l).
    #[inline]
    pub fn node_pot(&self, v: usize, l: usize) -> f64 {
        self.node_pot[v][l]
    }

    /// Adds a pairwise potential; `pot` is row-major `L×L` with rows
    /// indexed by `u`'s label.
    pub fn add_edge(&mut self, u: usize, v: usize, pot: Vec<f64>) {
        assert!(u != v, "self edge");
        assert!(u < self.n_vars() && v < self.n_vars());
        assert_eq!(pot.len(), self.n_labels * self.n_labels);
        let id = self.edges.len();
        self.edges.push(MrfEdge { u, v, pot });
        self.adj[u].push(id);
        self.adj[v].push(id);
    }

    /// Adds a Potts-style edge: score `w` when both labels are equal and
    /// the shared label is not in `excluded`; 0 otherwise. This is the
    /// paper's Eq. 4 shape (excluded = {nr}).
    pub fn add_potts_edge(&mut self, u: usize, v: usize, w: f64, excluded: &[usize]) {
        let l = self.n_labels;
        let mut pot = vec![0.0; l * l];
        for lab in 0..l {
            if !excluded.contains(&lab) {
                pot[lab * l + lab] = w;
            }
        }
        self.add_edge(u, v, pot);
    }

    /// The edges.
    pub fn edges(&self) -> &[MrfEdge] {
        &self.edges
    }

    /// Edge ids incident to variable `v`.
    pub fn incident(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Edge potential of edge `e` for labels `(lu, lv)` (in the edge's own
    /// endpoint order).
    #[inline]
    pub fn edge_pot(&self, e: usize, lu: usize, lv: usize) -> f64 {
        self.edges[e].pot[lu * self.n_labels + lv]
    }

    /// Total score of a full labeling (node + edge terms). Forbidden
    /// configurations score ≤ [`NEG_INF_SCORE`].
    pub fn score(&self, labeling: &[usize]) -> f64 {
        debug_assert_eq!(labeling.len(), self.n_vars());
        let mut s = 0.0;
        for (v, &l) in labeling.iter().enumerate() {
            s += self.node_pot[v][l];
        }
        for e in &self.edges {
            s += e.pot[labeling[e.u] * self.n_labels + labeling[e.v]];
        }
        s
    }

    /// Exact MAP by exhaustive enumeration — exponential, for tests and
    /// tiny models only.
    ///
    /// # Panics
    /// Panics if `n_labels ^ n_vars` exceeds 2_000_000 states.
    pub fn brute_force_map(&self) -> (Vec<usize>, f64) {
        let states = (self.n_labels as u64).checked_pow(self.n_vars() as u32);
        assert!(
            states.map(|s| s <= 2_000_000).unwrap_or(false),
            "state space too large for brute force"
        );
        let mut best = (vec![0; self.n_vars()], f64::NEG_INFINITY);
        let mut cur = vec![0usize; self.n_vars()];
        loop {
            let s = self.score(&cur);
            if s > best.1 {
                best = (cur.clone(), s);
            }
            // Odometer increment.
            let mut i = 0;
            loop {
                if i == self.n_vars() {
                    return best;
                }
                cur[i] += 1;
                if cur[i] < self.n_labels {
                    break;
                }
                cur[i] = 0;
                i += 1;
            }
        }
    }

    /// True iff the labeling avoids every forbidden (≤ [`NEG_INF_SCORE`])
    /// node or edge entry.
    pub fn is_feasible(&self, labeling: &[usize]) -> bool {
        labeling
            .iter()
            .enumerate()
            .all(|(v, &l)| self.node_pot[v][l] > NEG_INF_SCORE / 2.0)
            && self
                .edges
                .iter()
                .all(|e| e.pot[labeling[e.u] * self.n_labels + labeling[e.v]] > NEG_INF_SCORE / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> PairwiseMrf {
        // 3 vars, 2 labels; prefer alternating via dissociative edges.
        let mut m = PairwiseMrf::new(vec![vec![1.0, 0.0], vec![0.0, 0.0], vec![1.0, 0.0]]);
        let dissoc = vec![0.0, 2.0, 2.0, 0.0]; // reward different labels
        m.add_edge(0, 1, dissoc.clone());
        m.add_edge(1, 2, dissoc);
        m
    }

    #[test]
    fn score_adds_node_and_edge_terms() {
        let m = chain();
        // labeling [0,1,0]: nodes 1+0+1, edges 2+2 = 6.
        assert!((m.score(&[0, 1, 0]) - 6.0).abs() < 1e-12);
        // labeling [0,0,0]: nodes 2, edges 0.
        assert!((m.score(&[0, 0, 0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn brute_force_finds_map() {
        let m = chain();
        let (lab, s) = m.brute_force_map();
        assert_eq!(lab, vec![0, 1, 0]);
        assert!((s - 6.0).abs() < 1e-12);
    }

    #[test]
    fn potts_edge_shape() {
        let mut m = PairwiseMrf::new(vec![vec![0.0; 3], vec![0.0; 3]]);
        m.add_potts_edge(0, 1, 1.5, &[2]); // label 2 excluded (like nr)
        assert_eq!(m.edge_pot(0, 0, 0), 1.5);
        assert_eq!(m.edge_pot(0, 1, 1), 1.5);
        assert_eq!(m.edge_pot(0, 2, 2), 0.0);
        assert_eq!(m.edge_pot(0, 0, 1), 0.0);
    }

    #[test]
    fn feasibility_with_neg_inf() {
        let mut m = PairwiseMrf::new(vec![vec![0.0, NEG_INF_SCORE], vec![0.0, 0.0]]);
        m.add_edge(0, 1, vec![0.0, 0.0, 0.0, NEG_INF_SCORE]);
        assert!(m.is_feasible(&[0, 0]));
        assert!(!m.is_feasible(&[1, 0])); // node forbidden
        assert!(m.is_feasible(&[0, 1]));
    }

    #[test]
    fn incident_edges_tracked() {
        let m = chain();
        assert_eq!(m.incident(0), &[0]);
        assert_eq!(m.incident(1), &[0, 1]);
        assert_eq!(m.incident(2), &[1]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_potentials_rejected() {
        PairwiseMrf::new(vec![vec![0.0, 1.0], vec![0.0]]);
    }

    #[test]
    #[should_panic(expected = "state space")]
    fn brute_force_guard() {
        let m = PairwiseMrf::new(vec![vec![0.0; 10]; 10]);
        m.brute_force_map();
    }
}
