//! Loopy max-product belief propagation (log/score domain, damped,
//! synchronous). One of the two edge-centric baselines of paper §5.3.
//!
//! BP is exact on trees; on loopy graphs it is a heuristic that the paper
//! found slightly worse than α-expansion, in part because lowering the
//! `mutex` constraint to pairwise potentials creates many dissociative
//! edges, which message passing handles poorly. We reproduce that setup
//! faithfully.

use crate::mrf::PairwiseMrf;

/// Options for [`loopy_bp`].
#[derive(Debug, Clone)]
pub struct BpOptions {
    /// Number of synchronous message-update iterations.
    pub iterations: usize,
    /// Damping factor in `[0,1)`: `m ← damp·m_old + (1−damp)·m_new`.
    pub damping: f64,
}

impl Default for BpOptions {
    fn default() -> Self {
        BpOptions {
            iterations: 50,
            damping: 0.5,
        }
    }
}

/// Runs loopy max-product BP and returns the belief-argmax labeling.
pub fn loopy_bp(mrf: &PairwiseMrf, opts: &BpOptions) -> Vec<usize> {
    let l = mrf.n_labels();
    let ne = mrf.edges().len();
    // messages[e][0] = message u→v, messages[e][1] = message v→u.
    let mut messages = vec![[vec![0.0f64; l], vec![0.0f64; l]]; ne];
    let mut new_messages = messages.clone();

    for _ in 0..opts.iterations {
        for (eid, edge) in mrf.edges().iter().enumerate() {
            for dir in 0..2 {
                let from = if dir == 0 { edge.u } else { edge.v };
                let out = &mut new_messages[eid][dir];
                for lt in 0..l {
                    let mut best = f64::NEG_INFINITY;
                    for lf in 0..l {
                        let pot = if dir == 0 {
                            mrf.edge_pot(eid, lf, lt)
                        } else {
                            mrf.edge_pot(eid, lt, lf)
                        };
                        let mut val = mrf.node_pot(from, lf) + pot;
                        for &e2 in mrf.incident(from) {
                            if e2 == eid {
                                continue;
                            }
                            let other = &mrf.edges()[e2];
                            // Message INTO `from` along e2.
                            let incoming_dir = if other.u == from { 1 } else { 0 };
                            val += messages[e2][incoming_dir][lf];
                        }
                        best = best.max(val);
                    }
                    out[lt] = best;
                }
                // Normalize to avoid drift.
                let mx = out.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                if mx.is_finite() {
                    for x in out.iter_mut() {
                        *x -= mx;
                    }
                }
            }
        }
        // Damped synchronous update.
        for e in 0..ne {
            for dir in 0..2 {
                for lt in 0..l {
                    messages[e][dir][lt] = opts.damping * messages[e][dir][lt]
                        + (1.0 - opts.damping) * new_messages[e][dir][lt];
                }
            }
        }
    }

    // Beliefs and decoding.
    (0..mrf.n_vars())
        .map(|v| {
            let mut best = (0usize, f64::NEG_INFINITY);
            for lab in 0..l {
                let mut b = mrf.node_pot(v, lab);
                for &e in mrf.incident(v) {
                    let edge = &mrf.edges()[e];
                    let incoming_dir = if edge.u == v { 1 } else { 0 };
                    b += messages[e][incoming_dir][lab];
                }
                if b > best.1 {
                    best = (lab, b);
                }
            }
            best.0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_only_is_argmax() {
        let mrf = PairwiseMrf::new(vec![vec![0.0, 2.0], vec![3.0, 1.0]]);
        assert_eq!(loopy_bp(&mrf, &BpOptions::default()), vec![1, 0]);
    }

    #[test]
    fn exact_on_chain() {
        // BP is exact on trees: compare against brute force.
        let mut mrf = PairwiseMrf::new(vec![
            vec![1.0, 0.0, 0.2],
            vec![0.0, 0.1, 0.0],
            vec![0.0, 0.0, 1.2],
        ]);
        mrf.add_potts_edge(0, 1, 0.8, &[]);
        mrf.add_potts_edge(1, 2, 0.8, &[]);
        let bp = loopy_bp(&mrf, &BpOptions::default());
        let (brute, best) = mrf.brute_force_map();
        assert!(
            (mrf.score(&bp) - best).abs() < 1e-9,
            "bp {bp:?} brute {brute:?}"
        );
    }

    #[test]
    fn attractive_loop_consensus() {
        // Triangle with attractive edges: all nodes agree with the strong one.
        let mut mrf = PairwiseMrf::new(vec![vec![2.0, 0.0], vec![0.0, 0.1], vec![0.0, 0.1]]);
        mrf.add_potts_edge(0, 1, 1.0, &[]);
        mrf.add_potts_edge(1, 2, 1.0, &[]);
        mrf.add_potts_edge(0, 2, 1.0, &[]);
        let bp = loopy_bp(&mrf, &BpOptions::default());
        assert_eq!(bp, vec![0, 0, 0]);
    }

    #[test]
    fn isolated_variables_fine() {
        let mrf = PairwiseMrf::new(vec![vec![0.0, 1.0]; 4]);
        assert_eq!(loopy_bp(&mrf, &BpOptions::default()), vec![1; 4]);
    }

    #[test]
    fn dissociative_edge_splits_labels() {
        // Asymmetric unaries break the tie; the dissociative edge (like a
        // mutex lowered to pairwise form) must force different labels.
        let mut mrf = PairwiseMrf::new(vec![vec![2.0, 0.0], vec![1.0, 0.9]]);
        let mut pot = vec![0.0; 4];
        pot[0] = -10.0;
        pot[3] = -10.0;
        mrf.add_edge(0, 1, pot);
        let bp = loopy_bp(&mrf, &BpOptions::default());
        assert_eq!(bp, vec![0, 1], "{bp:?}");
    }

    #[test]
    fn symmetric_dissociative_ties_are_a_known_bp_weakness() {
        // With perfectly symmetric unaries, synchronous BP cannot break the
        // tie between [0,1] and [1,0] — the failure mode the paper blames
        // for BP's weakness on dissociative (mutex) edges. We only require
        // termination and a valid label range here.
        let mut mrf = PairwiseMrf::new(vec![vec![1.0, 0.9], vec![1.0, 0.9]]);
        let mut pot = vec![0.0; 4];
        pot[0] = -10.0;
        pot[3] = -10.0;
        mrf.add_edge(0, 1, pot);
        let bp = loopy_bp(&mrf, &BpOptions::default());
        assert!(bp.iter().all(|&l| l < 2));
    }

    #[test]
    fn zero_iterations_degenerates_to_argmax() {
        let mut mrf = PairwiseMrf::new(vec![vec![0.0, 2.0], vec![0.0, 2.0]]);
        mrf.add_potts_edge(0, 1, 5.0, &[]);
        let bp = loopy_bp(
            &mrf,
            &BpOptions {
                iterations: 0,
                damping: 0.5,
            },
        );
        assert_eq!(bp, vec![1, 1]);
    }
}
