//! Sequential tree-reweighted message passing (TRW-S, Kolmogorov 2006) —
//! the second edge-centric baseline of paper §5.3.
//!
//! This is the standard sequential variant for score maximization: a fixed
//! variable order, forward and backward sweeps, and messages reweighted by
//! `γ_v = 1 / max(#forward-neighbors, #backward-neighbors)`. Decoding takes
//! the argmax of reparameterized beliefs. (We decode from beliefs rather
//! than tracking the TRW lower bound: the paper uses TRW-S purely as a MAP
//! baseline.)

use crate::mrf::PairwiseMrf;

/// Options for [`trws`].
#[derive(Debug, Clone)]
pub struct TrwsOptions {
    /// Number of forward+backward sweep pairs.
    pub sweeps: usize,
}

impl Default for TrwsOptions {
    fn default() -> Self {
        TrwsOptions { sweeps: 30 }
    }
}

/// Runs TRW-S and returns the decoded labeling.
pub fn trws(mrf: &PairwiseMrf, opts: &TrwsOptions) -> Vec<usize> {
    let n = mrf.n_vars();
    let l = mrf.n_labels();
    let ne = mrf.edges().len();
    // messages[e][0]: u→v, messages[e][1]: v→u, with u,v the edge's stored
    // endpoints. "Forward" neighbor of x = neighbor with larger index.
    let mut messages = vec![[vec![0.0f64; l], vec![0.0f64; l]]; ne];

    // γ per variable.
    let gamma: Vec<f64> = (0..n)
        .map(|v| {
            let fwd = mrf
                .incident(v)
                .iter()
                .filter(|&&e| other_end(mrf, e, v) > v)
                .count();
            let bwd = mrf.incident(v).len() - fwd;
            1.0 / fwd.max(bwd).max(1) as f64
        })
        .collect();

    let belief = |v: usize, messages: &Vec<[Vec<f64>; 2]>| -> Vec<f64> {
        let mut b: Vec<f64> = (0..l).map(|lab| mrf.node_pot(v, lab)).collect();
        for &e in mrf.incident(v) {
            let edge = &mrf.edges()[e];
            let incoming = if edge.u == v { 1 } else { 0 };
            for (lab, bv) in b.iter_mut().enumerate() {
                *bv += messages[e][incoming][lab];
            }
        }
        b
    };

    for _ in 0..opts.sweeps {
        for &forward in &[true, false] {
            let order: Vec<usize> = if forward {
                (0..n).collect()
            } else {
                (0..n).rev().collect()
            };
            for &v in &order {
                let bel = belief(v, &messages);
                for &e in mrf.incident(v) {
                    let w = other_end(mrf, e, v);
                    let is_fwd_edge = if forward { w > v } else { w < v };
                    if !is_fwd_edge {
                        continue;
                    }
                    let edge = &mrf.edges()[e];
                    let out_dir = if edge.u == v { 0 } else { 1 };
                    let in_dir = 1 - out_dir;
                    let mut out = vec![f64::NEG_INFINITY; l];
                    for (lw, o) in out.iter_mut().enumerate() {
                        for lv in 0..l {
                            let pot = if edge.u == v {
                                mrf.edge_pot(e, lv, lw)
                            } else {
                                mrf.edge_pot(e, lw, lv)
                            };
                            let val = gamma[v] * bel[lv] - messages[e][in_dir][lv] + pot;
                            if val > *o {
                                *o = val;
                            }
                        }
                    }
                    let mx = out.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    if mx.is_finite() {
                        for x in out.iter_mut() {
                            *x -= mx;
                        }
                    }
                    messages[e][out_dir] = out;
                }
            }
        }
    }

    // Decode greedily in order, conditioning on already-decoded neighbors
    // (the standard TRW-S decoding).
    let mut labeling = vec![usize::MAX; n];
    for v in 0..n {
        let bel = belief(v, &messages);
        let mut best = (0usize, f64::NEG_INFINITY);
        for lab in 0..l {
            let mut val = bel[lab];
            for &e in mrf.incident(v) {
                let w = other_end(mrf, e, v);
                if w < v && labeling[w] != usize::MAX {
                    let edge = &mrf.edges()[e];
                    let pot = if edge.u == v {
                        mrf.edge_pot(e, lab, labeling[w])
                    } else {
                        mrf.edge_pot(e, labeling[w], lab)
                    };
                    // Conditioning nudge: prefer labels consistent with
                    // decoded neighbors.
                    val += pot;
                }
            }
            if val > best.1 {
                best = (lab, val);
            }
        }
        labeling[v] = best.0;
    }
    labeling
}

fn other_end(mrf: &PairwiseMrf, e: usize, v: usize) -> usize {
    let edge = &mrf.edges()[e];
    if edge.u == v {
        edge.v
    } else {
        edge.u
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_only_is_argmax() {
        let mrf = PairwiseMrf::new(vec![vec![0.0, 2.0], vec![3.0, 1.0], vec![0.5, 0.4]]);
        assert_eq!(trws(&mrf, &TrwsOptions::default()), vec![1, 0, 0]);
    }

    #[test]
    fn exact_on_chain() {
        let mut mrf = PairwiseMrf::new(vec![
            vec![1.0, 0.0, 0.2],
            vec![0.0, 0.1, 0.0],
            vec![0.0, 0.0, 1.2],
        ]);
        mrf.add_potts_edge(0, 1, 0.8, &[]);
        mrf.add_potts_edge(1, 2, 0.8, &[]);
        let out = trws(&mrf, &TrwsOptions::default());
        let (_, best) = mrf.brute_force_map();
        assert!(
            (mrf.score(&out) - best).abs() < 1e-9,
            "trws {:?} score {} vs {}",
            out,
            mrf.score(&out),
            best
        );
    }

    #[test]
    fn attractive_triangle_consensus() {
        let mut mrf = PairwiseMrf::new(vec![vec![2.0, 0.0], vec![0.0, 0.1], vec![0.0, 0.1]]);
        mrf.add_potts_edge(0, 1, 1.0, &[]);
        mrf.add_potts_edge(1, 2, 1.0, &[]);
        mrf.add_potts_edge(0, 2, 1.0, &[]);
        assert_eq!(trws(&mrf, &TrwsOptions::default()), vec![0, 0, 0]);
    }

    #[test]
    fn respects_dissociative_edges_at_decode() {
        let mut mrf = PairwiseMrf::new(vec![vec![1.0, 0.9], vec![1.0, 0.9]]);
        let mut pot = vec![0.0; 4];
        pot[0] = -10.0;
        pot[3] = -10.0;
        mrf.add_edge(0, 1, pot);
        let out = trws(&mrf, &TrwsOptions::default());
        assert_ne!(out[0], out[1], "{out:?}");
    }

    #[test]
    fn zero_sweeps_still_valid_labeling() {
        let mrf = PairwiseMrf::new(vec![vec![0.0, 1.0]; 3]);
        let out = trws(&mrf, &TrwsOptions { sweeps: 0 });
        assert_eq!(out, vec![1, 1, 1]);
    }
}
