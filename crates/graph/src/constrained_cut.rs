//! The constrained minimum s-t cut of paper Figure 4.
//!
//! Given a weighted directed graph whose vertices are partitioned into
//! disjoint groups `V_1..V_T`, find a small s-t cut such that **at most one
//! vertex per group lies on the t side**. The unconstrained problem is
//! polynomial; the constrained one is NP-hard, and the paper gives the
//! greedy repair loop implemented here (a 2-approximation in their
//! analysis):
//!
//! ```text
//! run max-flow; S = t-side vertices
//! while some group Vi has |S ∩ Vi| > 1:
//!     for each violating group Vi, for each v in Ui = S ∩ Vi:
//!         f(v, Vi) = additional flow if cap(s,u) = ∞ for all u ∈ Ui \ {v}
//!     pick (i*, v*) minimizing f; apply its raises permanently; re-run flow
//! ```
//!
//! Raising `cap(s,u)` to ∞ makes `u` unconditionally reachable from `s`,
//! forcing it to the s side of any finite cut.

use crate::maxflow::{MaxFlowGraph, INF_CAP};

/// Handle to the s→u edges the algorithm may need to saturate.
///
/// The caller builds the expansion graph and registers, for every
/// group vertex `u`, the id of an `s→u` edge (creating one with capacity 0
/// if the construction didn't need one).
pub struct ConstrainedCutProblem<'a> {
    /// The flow network (already constructed, flow not yet pushed).
    pub graph: &'a mut MaxFlowGraph,
    /// Source node.
    pub s: usize,
    /// Sink node.
    pub t: usize,
    /// Disjoint vertex groups; each entry is `(vertex, s_edge_id)`.
    pub groups: Vec<Vec<(usize, usize)>>,
}

/// Runs the constrained min s-t cut. Returns, for every node, whether it is
/// on the **t side** of the final cut. Guarantees at most one vertex per
/// group on the t side.
pub fn constrained_min_cut(problem: ConstrainedCutProblem<'_>) -> Vec<bool> {
    let ConstrainedCutProblem {
        graph,
        s,
        t,
        groups,
    } = problem;
    graph.max_flow(s, t);
    loop {
        let s_side = graph.s_side(s);
        let violating: Vec<&Vec<(usize, usize)>> = groups
            .iter()
            .filter(|g| g.iter().filter(|&&(v, _)| !s_side[v]).count() > 1)
            .collect();
        if violating.is_empty() {
            return s_side.iter().map(|&on_s| !on_s).collect();
        }
        // Evaluate every candidate "keep v on the t side" choice.
        let mut best: Option<(f64, Vec<usize>)> = None; // (extra flow, edges to raise)
        for group in &violating {
            let members: Vec<(usize, usize)> =
                group.iter().copied().filter(|&(v, _)| !s_side[v]).collect();
            for &(keep, _) in &members {
                let raises: Vec<usize> = members
                    .iter()
                    .filter(|&&(v, _)| v != keep)
                    .map(|&(_, e)| e)
                    .collect();
                // Trial on a clone: how much extra flow do the raises cost?
                let mut trial = graph.clone();
                for &e in &raises {
                    trial.raise_cap(e, INF_CAP);
                }
                let extra = trial.max_flow(s, t);
                if best
                    .as_ref()
                    .map(|(f, _)| extra < *f - 1e-12)
                    .unwrap_or(true)
                {
                    best = Some((extra, raises));
                }
            }
        }
        let (_, raises) = best.expect("violating group has members");
        for e in raises {
            graph.raise_cap(e, INF_CAP);
        }
        graph.max_flow(s, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a toy "binary labeling" graph: node i pays `to_t[i]` if on the
    /// s side (cut edge i→t) and `to_s[i]` if on the t side (cut edge s→i).
    fn build(to_s: &[f64], to_t: &[f64]) -> (MaxFlowGraph, Vec<usize>) {
        let n = to_s.len();
        let mut g = MaxFlowGraph::new(n + 2);
        let s_edges: Vec<usize> = (0..n).map(|i| g.add_edge(0, 2 + i, to_s[i])).collect();
        for i in 0..n {
            g.add_edge(2 + i, 1, to_t[i]);
        }
        (g, s_edges)
    }

    #[test]
    fn unconstrained_solution_kept_when_feasible() {
        // Node 0 prefers t side (cheap s->0 edge), node 1 prefers s side.
        let (mut g, s_edges) = build(&[1.0, 9.0], &[9.0, 1.0]);
        let groups = vec![vec![(2, s_edges[0])], vec![(3, s_edges[1])]];
        let t_side = constrained_min_cut(ConstrainedCutProblem {
            graph: &mut g,
            s: 0,
            t: 1,
            groups,
        });
        assert!(t_side[2]);
        assert!(!t_side[3]);
    }

    #[test]
    fn violation_repaired_to_single_t_vertex() {
        // Both nodes prefer the t side but share a group: exactly one may
        // stay. Node 3 (cost 2 to move) should move... no: we keep the
        // vertex whose forced-move costs LESS extra flow; moving node 2
        // costs 9-1=8, moving node 3 costs 7-2=5, so node 2 stays on t.
        let (mut g, s_edges) = build(&[1.0, 2.0], &[9.0, 7.0]);
        let groups = vec![vec![(2, s_edges[0]), (3, s_edges[1])]];
        let t_side = constrained_min_cut(ConstrainedCutProblem {
            graph: &mut g,
            s: 0,
            t: 1,
            groups,
        });
        let on_t: Vec<usize> = (2..4).filter(|&v| t_side[v]).collect();
        assert_eq!(on_t, vec![2], "t side: {t_side:?}");
    }

    #[test]
    fn multiple_groups_all_repaired() {
        let (mut g, s_edges) = build(&[1.0, 1.0, 1.0, 1.0], &[5.0, 5.0, 5.0, 5.0]);
        let groups = vec![
            vec![(2, s_edges[0]), (3, s_edges[1])],
            vec![(4, s_edges[2]), (5, s_edges[3])],
        ];
        let t_side = constrained_min_cut(ConstrainedCutProblem {
            graph: &mut g,
            s: 0,
            t: 1,
            groups: groups.clone(),
        });
        for group in &groups {
            let count = group.iter().filter(|&&(v, _)| t_side[v]).count();
            assert!(count <= 1, "group violated: {t_side:?}");
        }
    }

    #[test]
    fn empty_groups_are_fine() {
        let (mut g, _) = build(&[1.0], &[2.0]);
        let t_side = constrained_min_cut(ConstrainedCutProblem {
            graph: &mut g,
            s: 0,
            t: 1,
            groups: vec![],
        });
        assert_eq!(t_side.len(), 3);
    }

    #[test]
    fn group_already_satisfied_untouched() {
        // Three singleton groups; no repair needed, plain min cut.
        let (mut g, s_edges) = build(&[1.0, 9.0, 1.0], &[9.0, 1.0, 9.0]);
        let groups = s_edges
            .iter()
            .enumerate()
            .map(|(i, &e)| vec![(2 + i, e)])
            .collect();
        let t_side = constrained_min_cut(ConstrainedCutProblem {
            graph: &mut g,
            s: 0,
            t: 1,
            groups,
        });
        assert!(t_side[2] && !t_side[3] && t_side[4]);
    }
}
