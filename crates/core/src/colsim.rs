//! Column-column similarity and edge construction (paper §3.3).
//!
//! Edge potentials transfer labels between content-overlapping columns of
//! *different* tables. Three robustness mechanisms from the paper:
//!
//! 1. **Max-matching edges** — per table pair, only the one-one
//!    max-weight matching between their columns produces edges (prevents
//!    label bleeding when columns within a table resemble each other);
//! 2. **Normalized similarity** — `nsim(tc → t'c') = sim / (λ + Σ sim)`
//!    bounds the total influence on a column at one (λ = 0.3);
//! 3. **Confidence gating** (applied by the inference drivers): a column's
//!    similarity only votes when its own labeling is confident.
//!
//! # The content-signature index
//!
//! Naively, [`build_edges`] scores O(candidates² · cols²) column pairs
//! per query, each one a string merge over the two columns' value lists
//! plus a header-vector cosine — the dominant edge-construction cost.
//! When every view carries bind-time [`InternedFeatures`], the pairs are
//! instead *admitted* through a per-query inverted index over each
//! column's FNV-1a content signatures (normalized cell values, and
//! header terms under a domain tag): two columns are admitted iff they
//! share at least one signature bucket.
//!
//! Skipping non-admitted pairs is **provably identical** to scoring
//! them: equal strings always hash equal, so a non-admitted pair shares
//! no cell value (overlap = 0) and no header term (cosine = 0) — its
//! similarity is exactly `mix·0 + (1−mix)·0 = 0.0`, which never survives
//! the `s > 0.0` edge filter regardless of `min_column_sim`. Hash
//! *collisions* between unequal strings merely admit a pair whose exact
//! similarity is then computed — no false negatives, no approximation.
//! Table pairs are still visited in the same `(i, j)` lexicographic
//! order and matched columns emitted in the same order, so the `nsim`
//! normalization sums accumulate identically and the resulting edges are
//! bit-for-bit the dense loop's. If any view lacks signatures (the
//! string-only oracle path), the dense loop runs unchanged.
//!
//! # The cross-query pair memo
//!
//! A table pair's matched columns are a pure function of the two tables
//! and two mapper parameters (`min_column_sim`, `content_sim_mix`) — the
//! query never enters [`match_columns`]. An engine therefore shares one
//! [`PairMemo`] across all of its queries: the first query to visit a
//! pair pays the similarity matrix and the matching flow, every later
//! query replays the recorded `(col_a, col_b, sim)` list bit-for-bit.
//! The per-query `nsim` normalization runs *after* the memo over the
//! query's own candidate set, so memoized and freshly computed pairs
//! produce identical edges. The memo is fingerprinted with the two
//! parameters it bakes in (ignored on mismatch) and must not outlive
//! the table contents it describes — the engine replaces it whenever a
//! live mutation can rebind a table id.

use crate::config::MapperConfig;
use crate::view::{InternedFeatures, TableView};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};
use wwt_graph::{solve_assignment, Assignment};
use wwt_model::WwtError;

/// Counters describing one edge-construction run (exposed through the
/// mapper's [`crate::mapper::MapStats`] and the service stats surface).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeStats {
    /// Column pairs whose exact similarity was computed.
    pub pairs_scored: u64,
    /// Column pairs skipped by the content-signature index (their
    /// similarity is provably exactly zero).
    pub pairs_skipped: u64,
    /// Column pairs replayed from the cross-query [`PairMemo`] without
    /// recomputation.
    pub pairs_memoized: u64,
}

/// Lock stripes of the pair memo: bounds contention when many queries
/// warm the memo concurrently.
const MEMO_STRIPES: usize = 16;
/// Per-stripe entry cap. Inserts beyond it are dropped (never evicted):
/// the memo is an accelerator, not a source of truth, and a bounded one
/// cannot grow without limit on a hostile workload.
const MEMO_STRIPE_CAP: usize = 4096;

/// Cross-query memo of per-table-pair column matchings keyed by the
/// `(table id, table id)` pair in visit order (see the module docs for
/// the exactness argument). Shared by reference through
/// [`crate::mapper::ColumnMapper::pair_memo`].
#[derive(Debug)]
pub struct PairMemo {
    /// Bit patterns of the two [`MapperConfig`] fields the cached
    /// matchings depend on; a mismatching mapper bypasses the memo.
    min_sim_bits: u64,
    mix_bits: u64,
    stripes: Vec<Mutex<HashMap<(u32, u32), Arc<Vec<(u32, u32, f64)>>>>>,
}

impl PairMemo {
    /// An empty memo fingerprinted for `cfg`'s similarity parameters.
    pub fn for_config(cfg: &MapperConfig) -> Self {
        PairMemo {
            min_sim_bits: cfg.min_column_sim.to_bits(),
            mix_bits: cfg.content_sim_mix.to_bits(),
            stripes: (0..MEMO_STRIPES)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// Whether cached matchings are valid under `cfg` — true iff the two
    /// parameters [`match_columns`] reads are bit-identical.
    pub fn matches(&self, cfg: &MapperConfig) -> bool {
        self.min_sim_bits == cfg.min_column_sim.to_bits()
            && self.mix_bits == cfg.content_sim_mix.to_bits()
    }

    /// Number of memoized table pairs (observability).
    pub fn entries(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("pair memo stripe poisoned").len())
            .sum()
    }

    fn stripe(&self, key: (u32, u32)) -> &Mutex<HashMap<(u32, u32), Arc<Vec<(u32, u32, f64)>>>> {
        let h = (key.0 as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(key.1 as u64);
        &self.stripes[(h >> 32) as usize % MEMO_STRIPES]
    }

    fn get(&self, key: (u32, u32)) -> Option<Arc<Vec<(u32, u32, f64)>>> {
        self.stripe(key)
            .lock()
            .expect("pair memo stripe poisoned")
            .get(&key)
            .cloned()
    }

    fn insert(&self, key: (u32, u32), matched: Vec<(u32, u32, f64)>) {
        let mut map = self.stripe(key).lock().expect("pair memo stripe poisoned");
        if map.len() < MEMO_STRIPE_CAP {
            map.insert(key, Arc::new(matched));
        }
    }
}

/// An undirected cross-table column edge selected by the max-matching, with
/// the two directed normalized similarities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnEdge {
    /// First endpoint: (table index, column index).
    pub a: (usize, usize),
    /// Second endpoint.
    pub b: (usize, usize),
    /// Raw symmetric similarity.
    pub sim: f64,
    /// `nsim(a → b)`: a's similarity to b after normalizing over a's
    /// neighborhood.
    pub nsim_ab: f64,
    /// `nsim(b → a)`.
    pub nsim_ba: f64,
}

/// Raw similarity between two columns of *different* tables: a mix of
/// normalized-cell-value overlap and header TF-IDF cosine
/// (`sim = mix·overlap + (1−mix)·header_cos`).
pub fn column_similarity(
    va: &TableView<'_>,
    ca: usize,
    vb: &TableView<'_>,
    cb: usize,
    mix: f64,
) -> f64 {
    let a_vals = &va.column_values[ca];
    let b_vals = &vb.column_values[cb];
    let overlap = if a_vals.is_empty() || b_vals.is_empty() {
        0.0
    } else {
        let inter = sorted_intersection_count(a_vals, b_vals) as f64;
        inter / a_vals.len().min(b_vals.len()) as f64
    };
    let header_cos = va.column_header_vecs[ca].cosine(&vb.column_header_vecs[cb]);
    mix * overlap + (1.0 - mix) * header_cos
}

/// `|A ∩ B|` of two sorted, deduplicated value lists — the same count a
/// set intersection produces, via a linear merge.
fn sorted_intersection_count(a: &[String], b: &[String]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Builds the cross-table edge set: for every pair of tables, the one-one
/// max-weight matching between their columns (similarities below
/// `cfg.min_column_sim` dropped), then `nsim` normalization over each
/// column's kept neighborhood.
pub fn build_edges(views: &[TableView<'_>], cfg: &MapperConfig) -> Vec<ColumnEdge> {
    build_edges_pruned(views, cfg, None, None, None)
        .expect("infallible without a cancel hook")
        .0
}

/// The inverted signature index: for each `(table, column)` pair the set of
/// admitted partner columns per partner table, keyed `(i, j)` with `i < j`.
type AdmitIndex = HashMap<(usize, usize), HashSet<(u32, u32)>>;

/// Builds the admission index over every kept view's content signatures, or
/// `None` if any kept view lacks bind-time features (oracle path → dense).
fn admission_index(views: &[TableView<'_>], kept: &[bool]) -> Option<AdmitIndex> {
    let interned: Vec<Option<&InternedFeatures>> = views
        .iter()
        .zip(kept)
        .map(|(v, &k)| if k { v.interned() } else { None })
        .collect();
    if interned.iter().zip(kept).any(|(f, &k)| k && f.is_none()) {
        return None;
    }
    // Bucket: signature → every (table, column) containing it.
    let mut buckets: HashMap<u64, Vec<(u32, u32)>> = HashMap::new();
    for (t, f) in interned.iter().enumerate() {
        let Some(f) = f else { continue };
        for group in [&f.value_sigs, &f.header_sigs] {
            for (c, sigs) in group.iter().enumerate() {
                for &sig in sigs {
                    buckets.entry(sig).or_default().push((t as u32, c as u32));
                }
            }
        }
    }
    let mut admit: AdmitIndex = HashMap::new();
    for members in buckets.values() {
        for (x, &(ti, ca)) in members.iter().enumerate() {
            for &(tj, cb) in &members[x + 1..] {
                if ti == tj {
                    continue;
                }
                let (key, pair) = if ti < tj {
                    ((ti as usize, tj as usize), (ca, cb))
                } else {
                    ((tj as usize, ti as usize), (cb, ca))
                };
                admit.entry(key).or_default().insert(pair);
            }
        }
    }
    Some(admit)
}

/// [`build_edges`] with an optional table keep-mask (pruned tables, from the
/// `early_exit` knob, contribute no edges but retain their global indices),
/// an optional cancellation hook checked once per outer table, an optional
/// cross-query [`PairMemo`], and skip counters. On the fast path, column
/// pairs sharing no content signature are skipped and previously visited
/// pairs replay from the memo — both provably without changing the result
/// (see the module docs).
pub fn build_edges_pruned(
    views: &[TableView<'_>],
    cfg: &MapperConfig,
    keep: Option<&[bool]>,
    cancel: Option<&(dyn Fn() -> Result<(), WwtError> + Sync)>,
    memo: Option<&PairMemo>,
) -> Result<(Vec<ColumnEdge>, EdgeStats), WwtError> {
    let kept: Vec<bool> = match keep {
        Some(k) => k.to_vec(),
        None => vec![true; views.len()],
    };
    // A memo built for different similarity parameters is ignored.
    let memo = memo.filter(|m| m.matches(cfg));
    // The admission index is built lazily on the first memo miss: a query
    // whose every pair replays from the memo never pays for it.
    let mut admit: Option<Option<AdmitIndex>> = None;
    let mut stats = EdgeStats::default();
    let mut raw: Vec<((usize, usize), (usize, usize), f64)> = Vec::new();
    for i in 0..views.len() {
        if let Some(check) = cancel {
            check()?;
        }
        if !kept[i] {
            continue;
        }
        for j in (i + 1)..views.len() {
            if !kept[j] {
                continue;
            }
            let key = (views[i].table.id.0, views[j].table.id.0);
            if let Some(m) = memo {
                if let Some(hit) = m.get(key) {
                    stats.pairs_memoized += (views[i].n_cols() * views[j].n_cols()) as u64;
                    for &(ca, cb, sim) in hit.iter() {
                        raw.push(((i, ca as usize), (j, cb as usize), sim));
                    }
                    continue;
                }
            }
            let admit = admit.get_or_insert_with(|| admission_index(views, &kept));
            let mask = match admit {
                Some(index) => match index.get(&(i, j)) {
                    Some(set) => Some(set),
                    None => {
                        // No column pair shares a signature: every
                        // similarity is exactly zero, no edges possible.
                        stats.pairs_skipped += (views[i].n_cols() * views[j].n_cols()) as u64;
                        if let Some(m) = memo {
                            m.insert(key, Vec::new());
                        }
                        continue;
                    }
                },
                None => None,
            };
            let matched = match_columns(&views[i], &views[j], cfg, mask, &mut stats);
            if let Some(m) = memo {
                m.insert(
                    key,
                    matched
                        .iter()
                        .map(|&(ca, cb, sim)| (ca as u32, cb as u32, sim))
                        .collect(),
                );
            }
            for (ca, cb, sim) in matched {
                raw.push(((i, ca), (j, cb), sim));
            }
        }
    }
    // Σ sim per column over kept edges.
    let mut sums: HashMap<(usize, usize), f64> = HashMap::new();
    for &(a, b, sim) in &raw {
        *sums.entry(a).or_insert(0.0) += sim;
        *sums.entry(b).or_insert(0.0) += sim;
    }
    let edges = raw
        .into_iter()
        .map(|(a, b, sim)| ColumnEdge {
            a,
            b,
            sim,
            nsim_ab: sim / (cfg.nsim_lambda + sums[&a]),
            nsim_ba: sim / (cfg.nsim_lambda + sums[&b]),
        })
        .collect();
    Ok((edges, stats))
}

/// One-one max-weight matching between the columns of two tables; returns
/// `(col_a, col_b, sim)` for matched pairs above the similarity floor.
///
/// With an admission mask, only admitted cells are scored; the rest keep
/// similarity `0.0` — exactly what scoring them would produce (no shared
/// signature ⟹ no shared value, no shared header term).
fn match_columns(
    va: &TableView<'_>,
    vb: &TableView<'_>,
    cfg: &MapperConfig,
    mask: Option<&HashSet<(u32, u32)>>,
    stats: &mut EdgeStats,
) -> Vec<(usize, usize, f64)> {
    let (na, nb) = (va.n_cols(), vb.n_cols());
    let mut sims = vec![vec![0.0f64; nb]; na];
    let mut any = false;
    for (ca, row) in sims.iter_mut().enumerate() {
        for (cb, s) in row.iter_mut().enumerate() {
            if let Some(set) = mask {
                if !set.contains(&(ca as u32, cb as u32)) {
                    stats.pairs_skipped += 1;
                    continue;
                }
            }
            stats.pairs_scored += 1;
            let v = column_similarity(va, ca, vb, cb, cfg.content_sim_mix);
            if v >= cfg.min_column_sim {
                *s = v;
                any = true;
            }
        }
    }
    if !any {
        return Vec::new();
    }
    // Assignment: items = columns of a; bins = columns of b (cap 1) plus an
    // "unmatched" bin with enough capacity for everyone.
    let weights: Vec<Vec<f64>> = sims
        .iter()
        .map(|row| {
            let mut r: Vec<f64> = row
                .iter()
                .map(|&s| if s > 0.0 { s } else { f64::NEG_INFINITY })
                .collect();
            r.push(0.0); // unmatched
            r
        })
        .collect();
    let mut bin_caps = vec![1u32; nb];
    bin_caps.push(na as u32);
    let sol = match solve_assignment(&Assignment { bin_caps, weights }) {
        Some(s) => s,
        None => return Vec::new(),
    };
    sol.assignment
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b < nb)
        .map(|(ca, &cb)| (ca, cb, sims[ca][cb]))
        .filter(|&(_, _, s)| s > 0.0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_model::{TableId, WebTable};
    use wwt_text::CorpusStats;

    fn make(id: u32, headers: Vec<&str>, cols: Vec<Vec<&str>>) -> WebTable {
        let n_rows = cols[0].len();
        let rows: Vec<Vec<String>> = (0..n_rows)
            .map(|r| cols.iter().map(|c| c[r].to_string()).collect())
            .collect();
        WebTable::new(
            TableId(id),
            "u",
            None,
            vec![headers.into_iter().map(String::from).collect()],
            rows,
            vec![],
        )
        .unwrap()
    }

    fn cfg() -> MapperConfig {
        MapperConfig::default()
    }

    #[test]
    fn value_overlap_drives_similarity() {
        let stats = CorpusStats::new();
        let t1 = make(
            0,
            vec!["Country", "Currency"],
            vec![
                vec!["India", "Japan", "France"],
                vec!["Rupee", "Yen", "Euro"],
            ],
        );
        let t2 = make(
            1,
            vec!["Nation", "Money"],
            vec![
                vec!["India", "Japan", "Brazil"],
                vec!["Rupee", "Yen", "Real"],
            ],
        );
        let v1 = TableView::new(&t1, &stats, 0.3);
        let v2 = TableView::new(&t2, &stats, 0.3);
        let same = column_similarity(&v1, 0, &v2, 0, 0.7);
        let cross = column_similarity(&v1, 0, &v2, 1, 0.7);
        assert!(same > cross, "same {same} cross {cross}");
        assert!(same > 0.4);
    }

    #[test]
    fn header_cosine_contributes() {
        let stats = CorpusStats::new();
        // No shared values, shared header tokens.
        let t1 = make(0, vec!["Currency"], vec![vec!["Rupee", "Yen"]]);
        let t2 = make(1, vec!["Currency"], vec![vec!["Peso", "Won"]]);
        let v1 = TableView::new(&t1, &stats, 0.3);
        let v2 = TableView::new(&t2, &stats, 0.3);
        let s = column_similarity(&v1, 0, &v2, 0, 0.7);
        assert!((s - 0.3).abs() < 1e-9, "header-only sim {s}");
    }

    #[test]
    fn max_matching_yields_one_edge_per_column() {
        let stats = CorpusStats::new();
        // t2's two columns BOTH resemble t1's capital column (the paper's
        // "us states | capitals | largest cities" trap); matching must pick
        // only the best pair per column.
        let t1 = make(
            0,
            vec!["State", "Capital"],
            vec![
                vec!["Ohio", "Texas", "Utah"],
                vec!["Columbus", "Austin", "Salt Lake City"],
            ],
        );
        let t2 = make(
            1,
            vec!["State", "Capital", "Largest city"],
            vec![
                vec!["Ohio", "Texas", "Utah"],
                vec!["Columbus", "Austin", "Salt Lake City"],
                vec!["Columbus", "Houston", "Salt Lake City"],
            ],
        );
        let v1 = TableView::new(&t1, &stats, 0.3);
        let v2 = TableView::new(&t2, &stats, 0.3);
        let views = vec![v1, v2];
        let edges = build_edges(&views, &cfg());
        // Each column of t1 appears in at most one edge.
        for c in 0..2 {
            let deg = edges.iter().filter(|e| e.a == (0, c)).count();
            assert!(deg <= 1, "column (0,{c}) has degree {deg}");
        }
        // The capital column must match t2's capital column, not largest
        // city (same values but "largest city" header mismatch drops it).
        let cap_edge = edges.iter().find(|e| e.a == (0, 1)).expect("capital edge");
        assert_eq!(cap_edge.b, (1, 1));
    }

    #[test]
    fn weak_similarities_dropped() {
        let stats = CorpusStats::new();
        let t1 = make(0, vec!["A"], vec![vec!["x1", "x2"]]);
        let t2 = make(1, vec!["B"], vec![vec!["y1", "y2"]]);
        let views = vec![
            TableView::new(&t1, &stats, 0.3),
            TableView::new(&t2, &stats, 0.3),
        ];
        assert!(build_edges(&views, &cfg()).is_empty());
    }

    #[test]
    fn nsim_normalization_bounds_influence() {
        let stats = CorpusStats::new();
        // One column similar to many copies: per-edge nsim must shrink
        // relative to the isolated-pair case.
        let base = make(0, vec!["Country"], vec![vec!["India", "Japan", "France"]]);
        let copies: Vec<WebTable> = (1..5)
            .map(|i| make(i, vec!["Country"], vec![vec!["India", "Japan", "France"]]))
            .collect();
        let mut views = vec![TableView::new(&base, &stats, 0.3)];
        for c in &copies {
            views.push(TableView::new(c, &stats, 0.3));
        }
        let edges = build_edges(&views, &cfg());
        let total_in: f64 = edges
            .iter()
            .filter(|e| e.a == (0, 0))
            .map(|e| e.nsim_ab)
            .sum();
        assert!(total_in <= 1.0 + 1e-9, "total incoming nsim {total_in}");
        // Isolated pair for comparison: one neighbor keeps most of its sim.
        let pair_views = vec![
            TableView::new(&base, &stats, 0.3),
            TableView::new(&copies[0], &stats, 0.3),
        ];
        let pair = build_edges(&pair_views, &cfg());
        assert_eq!(pair.len(), 1);
        let hub_edge = edges.iter().find(|e| e.a == (0, 0)).unwrap();
        assert!(
            hub_edge.nsim_ab < pair[0].nsim_ab,
            "hub nsim {} should shrink below pair nsim {}",
            hub_edge.nsim_ab,
            pair[0].nsim_ab
        );
        // Normalization never exceeds the raw similarity.
        assert!(pair[0].nsim_ab < pair[0].sim);
    }

    /// A small corpus with overlapping, header-only-related, and fully
    /// disjoint tables — exercises every admission outcome.
    fn mixed_tables() -> Vec<WebTable> {
        vec![
            make(
                0,
                vec!["Country", "Currency"],
                vec![
                    vec!["India", "Japan", "France"],
                    vec!["Rupee", "Yen", "Euro"],
                ],
            ),
            make(
                1,
                vec!["Nation", "Money"],
                vec![
                    vec!["India", "Japan", "Brazil"],
                    vec!["Rupee", "Yen", "Real"],
                ],
            ),
            // Shares only header terms with table 0.
            make(2, vec!["Currency"], vec![vec!["Peso", "Won"]]),
            // Completely disjoint from everything.
            make(
                3,
                vec!["Element", "Symbol"],
                vec![vec!["Iron", "Gold"], vec!["Fe", "Au"]],
            ),
        ]
    }

    #[test]
    fn signature_index_matches_dense_bitwise() {
        let stats = CorpusStats::new();
        let tables = mixed_tables();
        let fast: Vec<TableView<'_>> = tables
            .iter()
            .map(|t| TableView::new(t, &stats, 0.3))
            .collect();
        let oracle: Vec<TableView<'_>> = tables
            .iter()
            .map(|t| TableView::new_oracle(t, &stats, 0.3))
            .collect();
        assert!(fast.iter().all(|v| v.interned().is_some()));
        assert!(oracle.iter().all(|v| v.interned().is_none()));
        let (indexed, istats) = build_edges_pruned(&fast, &cfg(), None, None, None).unwrap();
        let (dense, dstats) = build_edges_pruned(&oracle, &cfg(), None, None, None).unwrap();
        assert_eq!(indexed.len(), dense.len());
        for (a, b) in indexed.iter().zip(&dense) {
            assert_eq!(a.a, b.a);
            assert_eq!(a.b, b.b);
            assert_eq!(a.sim.to_bits(), b.sim.to_bits());
            assert_eq!(a.nsim_ab.to_bits(), b.nsim_ab.to_bits());
            assert_eq!(a.nsim_ba.to_bits(), b.nsim_ba.to_bits());
        }
        // The disjoint table's pairs must actually be skipped, and the
        // dense path must score every pair.
        assert!(istats.pairs_skipped > 0, "{istats:?}");
        assert_eq!(dstats.pairs_skipped, 0);
        assert_eq!(
            istats.pairs_scored + istats.pairs_skipped,
            dstats.pairs_scored
        );
    }

    #[test]
    fn keep_mask_excludes_pruned_tables() {
        let stats = CorpusStats::new();
        let tables = mixed_tables();
        let views: Vec<TableView<'_>> = tables
            .iter()
            .map(|t| TableView::new(t, &stats, 0.3))
            .collect();
        let keep = vec![true, false, true, true];
        let (edges, _) = build_edges_pruned(&views, &cfg(), Some(&keep), None, None).unwrap();
        assert!(!edges.is_empty());
        // Pruned table 1 appears in no edge; survivors keep their global
        // indices (table 2's header edge to table 0 is unaffected).
        assert!(edges.iter().all(|e| e.a.0 != 1 && e.b.0 != 1));
        assert!(edges.iter().any(|e| e.a.0 == 0 && e.b.0 == 2));
    }

    #[test]
    fn pair_memo_replays_matches_bitwise() {
        let stats = CorpusStats::new();
        let tables = mixed_tables();
        let views: Vec<TableView<'_>> = tables
            .iter()
            .map(|t| TableView::new(t, &stats, 0.3))
            .collect();
        let memo = PairMemo::for_config(&cfg());
        let (reference, _) = build_edges_pruned(&views, &cfg(), None, None, None).unwrap();
        let (cold, cs) = build_edges_pruned(&views, &cfg(), None, None, Some(&memo)).unwrap();
        assert_eq!(cs.pairs_memoized, 0, "first visit computes everything");
        assert!(cs.pairs_scored > 0);
        assert!(memo.entries() > 0);
        let (warm, ws) = build_edges_pruned(&views, &cfg(), None, None, Some(&memo)).unwrap();
        assert_eq!(ws.pairs_scored, 0, "second visit replays everything");
        assert_eq!(ws.pairs_skipped, 0, "admission-skipped pairs memoize too");
        assert!(ws.pairs_memoized > 0);
        for (a, b) in reference.iter().zip(cold.iter().chain(warm.iter())) {
            assert_eq!(a.a, b.a);
            assert_eq!(a.b, b.b);
            assert_eq!(a.sim.to_bits(), b.sim.to_bits());
            assert_eq!(a.nsim_ab.to_bits(), b.nsim_ab.to_bits());
            assert_eq!(a.nsim_ba.to_bits(), b.nsim_ba.to_bits());
        }
        assert_eq!(cold.len(), reference.len());
        assert_eq!(warm.len(), reference.len());
    }

    #[test]
    fn pair_memo_over_a_candidate_subset_keeps_global_indices() {
        let stats = CorpusStats::new();
        let tables = mixed_tables();
        let full: Vec<TableView<'_>> = tables
            .iter()
            .map(|t| TableView::new(t, &stats, 0.3))
            .collect();
        let memo = PairMemo::for_config(&cfg());
        build_edges_pruned(&full, &cfg(), None, None, Some(&memo)).unwrap();
        // A later query retrieves a different, reordered candidate subset:
        // replayed pairs must land on the subset's own view indices.
        let subset: Vec<TableView<'_>> = [2usize, 0, 1]
            .iter()
            .map(|&i| TableView::new(&tables[i], &stats, 0.3))
            .collect();
        let (memoized, ms) = build_edges_pruned(&subset, &cfg(), None, None, Some(&memo)).unwrap();
        let (fresh, _) = build_edges_pruned(&subset, &cfg(), None, None, None).unwrap();
        assert!(ms.pairs_memoized > 0, "{ms:?}");
        assert_eq!(memoized.len(), fresh.len());
        for (a, b) in memoized.iter().zip(&fresh) {
            assert_eq!(a.a, b.a);
            assert_eq!(a.b, b.b);
            assert_eq!(a.sim.to_bits(), b.sim.to_bits());
            assert_eq!(a.nsim_ab.to_bits(), b.nsim_ab.to_bits());
            assert_eq!(a.nsim_ba.to_bits(), b.nsim_ba.to_bits());
        }
    }

    #[test]
    fn pair_memo_config_mismatch_is_bypassed() {
        let stats = CorpusStats::new();
        let tables = mixed_tables();
        let views: Vec<TableView<'_>> = tables
            .iter()
            .map(|t| TableView::new(t, &stats, 0.3))
            .collect();
        let other = MapperConfig {
            min_column_sim: 0.5,
            ..MapperConfig::default()
        };
        let memo = PairMemo::for_config(&other);
        assert!(!memo.matches(&cfg()));
        for _ in 0..2 {
            let (_, s) = build_edges_pruned(&views, &cfg(), None, None, Some(&memo)).unwrap();
            assert_eq!(s.pairs_memoized, 0, "mismatched memo must be ignored");
            assert!(s.pairs_scored > 0);
        }
        assert_eq!(memo.entries(), 0);
    }

    #[test]
    fn cancel_hook_aborts_edge_construction() {
        let stats = CorpusStats::new();
        let tables = mixed_tables();
        let views: Vec<TableView<'_>> = tables
            .iter()
            .map(|t| TableView::new(t, &stats, 0.3))
            .collect();
        let cancel = || Err(WwtError::DeadlineExceeded("edges".into()));
        let res = build_edges_pruned(&views, &cfg(), None, Some(&cancel), None);
        assert!(matches!(res, Err(WwtError::DeadlineExceeded(_))));
    }

    #[test]
    fn no_self_table_edges() {
        let stats = CorpusStats::new();
        let t1 = make(
            0,
            vec!["A", "B"],
            vec![
                vec!["x", "y"],
                vec!["x", "y"], // identical columns within the table
            ],
        );
        let views = vec![TableView::new(&t1, &stats, 0.3)];
        assert!(build_edges(&views, &cfg()).is_empty());
    }
}
