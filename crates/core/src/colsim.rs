//! Column-column similarity and edge construction (paper §3.3).
//!
//! Edge potentials transfer labels between content-overlapping columns of
//! *different* tables. Three robustness mechanisms from the paper:
//!
//! 1. **Max-matching edges** — per table pair, only the one-one
//!    max-weight matching between their columns produces edges (prevents
//!    label bleeding when columns within a table resemble each other);
//! 2. **Normalized similarity** — `nsim(tc → t'c') = sim / (λ + Σ sim)`
//!    bounds the total influence on a column at one (λ = 0.3);
//! 3. **Confidence gating** (applied by the inference drivers): a column's
//!    similarity only votes when its own labeling is confident.

use crate::config::MapperConfig;
use crate::view::TableView;
use std::collections::HashMap;
use wwt_graph::{solve_assignment, Assignment};

/// An undirected cross-table column edge selected by the max-matching, with
/// the two directed normalized similarities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnEdge {
    /// First endpoint: (table index, column index).
    pub a: (usize, usize),
    /// Second endpoint.
    pub b: (usize, usize),
    /// Raw symmetric similarity.
    pub sim: f64,
    /// `nsim(a → b)`: a's similarity to b after normalizing over a's
    /// neighborhood.
    pub nsim_ab: f64,
    /// `nsim(b → a)`.
    pub nsim_ba: f64,
}

/// Raw similarity between two columns of *different* tables: a mix of
/// normalized-cell-value overlap and header TF-IDF cosine
/// (`sim = mix·overlap + (1−mix)·header_cos`).
pub fn column_similarity(
    va: &TableView<'_>,
    ca: usize,
    vb: &TableView<'_>,
    cb: usize,
    mix: f64,
) -> f64 {
    let a_vals = &va.column_values[ca];
    let b_vals = &vb.column_values[cb];
    let overlap = if a_vals.is_empty() || b_vals.is_empty() {
        0.0
    } else {
        let inter = sorted_intersection_count(a_vals, b_vals) as f64;
        inter / a_vals.len().min(b_vals.len()) as f64
    };
    let header_cos = va.column_header_vecs[ca].cosine(&vb.column_header_vecs[cb]);
    mix * overlap + (1.0 - mix) * header_cos
}

/// `|A ∩ B|` of two sorted, deduplicated value lists — the same count a
/// set intersection produces, via a linear merge.
fn sorted_intersection_count(a: &[String], b: &[String]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Builds the cross-table edge set: for every pair of tables, the one-one
/// max-weight matching between their columns (similarities below
/// `cfg.min_column_sim` dropped), then `nsim` normalization over each
/// column's kept neighborhood.
pub fn build_edges(views: &[TableView<'_>], cfg: &MapperConfig) -> Vec<ColumnEdge> {
    let mut raw: Vec<((usize, usize), (usize, usize), f64)> = Vec::new();
    for i in 0..views.len() {
        for j in (i + 1)..views.len() {
            for (ca, cb, sim) in match_columns(&views[i], &views[j], cfg) {
                raw.push(((i, ca), (j, cb), sim));
            }
        }
    }
    // Σ sim per column over kept edges.
    let mut sums: HashMap<(usize, usize), f64> = HashMap::new();
    for &(a, b, sim) in &raw {
        *sums.entry(a).or_insert(0.0) += sim;
        *sums.entry(b).or_insert(0.0) += sim;
    }
    raw.into_iter()
        .map(|(a, b, sim)| ColumnEdge {
            a,
            b,
            sim,
            nsim_ab: sim / (cfg.nsim_lambda + sums[&a]),
            nsim_ba: sim / (cfg.nsim_lambda + sums[&b]),
        })
        .collect()
}

/// One-one max-weight matching between the columns of two tables; returns
/// `(col_a, col_b, sim)` for matched pairs above the similarity floor.
fn match_columns(
    va: &TableView<'_>,
    vb: &TableView<'_>,
    cfg: &MapperConfig,
) -> Vec<(usize, usize, f64)> {
    let (na, nb) = (va.n_cols(), vb.n_cols());
    let mut sims = vec![vec![0.0f64; nb]; na];
    let mut any = false;
    for (ca, row) in sims.iter_mut().enumerate() {
        for (cb, s) in row.iter_mut().enumerate() {
            let v = column_similarity(va, ca, vb, cb, cfg.content_sim_mix);
            if v >= cfg.min_column_sim {
                *s = v;
                any = true;
            }
        }
    }
    if !any {
        return Vec::new();
    }
    // Assignment: items = columns of a; bins = columns of b (cap 1) plus an
    // "unmatched" bin with enough capacity for everyone.
    let weights: Vec<Vec<f64>> = sims
        .iter()
        .map(|row| {
            let mut r: Vec<f64> = row
                .iter()
                .map(|&s| if s > 0.0 { s } else { f64::NEG_INFINITY })
                .collect();
            r.push(0.0); // unmatched
            r
        })
        .collect();
    let mut bin_caps = vec![1u32; nb];
    bin_caps.push(na as u32);
    let sol = match solve_assignment(&Assignment { bin_caps, weights }) {
        Some(s) => s,
        None => return Vec::new(),
    };
    sol.assignment
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b < nb)
        .map(|(ca, &cb)| (ca, cb, sims[ca][cb]))
        .filter(|&(_, _, s)| s > 0.0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_model::{TableId, WebTable};
    use wwt_text::CorpusStats;

    fn make(id: u32, headers: Vec<&str>, cols: Vec<Vec<&str>>) -> WebTable {
        let n_rows = cols[0].len();
        let rows: Vec<Vec<String>> = (0..n_rows)
            .map(|r| cols.iter().map(|c| c[r].to_string()).collect())
            .collect();
        WebTable::new(
            TableId(id),
            "u",
            None,
            vec![headers.into_iter().map(String::from).collect()],
            rows,
            vec![],
        )
        .unwrap()
    }

    fn cfg() -> MapperConfig {
        MapperConfig::default()
    }

    #[test]
    fn value_overlap_drives_similarity() {
        let stats = CorpusStats::new();
        let t1 = make(
            0,
            vec!["Country", "Currency"],
            vec![
                vec!["India", "Japan", "France"],
                vec!["Rupee", "Yen", "Euro"],
            ],
        );
        let t2 = make(
            1,
            vec!["Nation", "Money"],
            vec![
                vec!["India", "Japan", "Brazil"],
                vec!["Rupee", "Yen", "Real"],
            ],
        );
        let v1 = TableView::new(&t1, &stats, 0.3);
        let v2 = TableView::new(&t2, &stats, 0.3);
        let same = column_similarity(&v1, 0, &v2, 0, 0.7);
        let cross = column_similarity(&v1, 0, &v2, 1, 0.7);
        assert!(same > cross, "same {same} cross {cross}");
        assert!(same > 0.4);
    }

    #[test]
    fn header_cosine_contributes() {
        let stats = CorpusStats::new();
        // No shared values, shared header tokens.
        let t1 = make(0, vec!["Currency"], vec![vec!["Rupee", "Yen"]]);
        let t2 = make(1, vec!["Currency"], vec![vec!["Peso", "Won"]]);
        let v1 = TableView::new(&t1, &stats, 0.3);
        let v2 = TableView::new(&t2, &stats, 0.3);
        let s = column_similarity(&v1, 0, &v2, 0, 0.7);
        assert!((s - 0.3).abs() < 1e-9, "header-only sim {s}");
    }

    #[test]
    fn max_matching_yields_one_edge_per_column() {
        let stats = CorpusStats::new();
        // t2's two columns BOTH resemble t1's capital column (the paper's
        // "us states | capitals | largest cities" trap); matching must pick
        // only the best pair per column.
        let t1 = make(
            0,
            vec!["State", "Capital"],
            vec![
                vec!["Ohio", "Texas", "Utah"],
                vec!["Columbus", "Austin", "Salt Lake City"],
            ],
        );
        let t2 = make(
            1,
            vec!["State", "Capital", "Largest city"],
            vec![
                vec!["Ohio", "Texas", "Utah"],
                vec!["Columbus", "Austin", "Salt Lake City"],
                vec!["Columbus", "Houston", "Salt Lake City"],
            ],
        );
        let v1 = TableView::new(&t1, &stats, 0.3);
        let v2 = TableView::new(&t2, &stats, 0.3);
        let views = vec![v1, v2];
        let edges = build_edges(&views, &cfg());
        // Each column of t1 appears in at most one edge.
        for c in 0..2 {
            let deg = edges.iter().filter(|e| e.a == (0, c)).count();
            assert!(deg <= 1, "column (0,{c}) has degree {deg}");
        }
        // The capital column must match t2's capital column, not largest
        // city (same values but "largest city" header mismatch drops it).
        let cap_edge = edges.iter().find(|e| e.a == (0, 1)).expect("capital edge");
        assert_eq!(cap_edge.b, (1, 1));
    }

    #[test]
    fn weak_similarities_dropped() {
        let stats = CorpusStats::new();
        let t1 = make(0, vec!["A"], vec![vec!["x1", "x2"]]);
        let t2 = make(1, vec!["B"], vec![vec!["y1", "y2"]]);
        let views = vec![
            TableView::new(&t1, &stats, 0.3),
            TableView::new(&t2, &stats, 0.3),
        ];
        assert!(build_edges(&views, &cfg()).is_empty());
    }

    #[test]
    fn nsim_normalization_bounds_influence() {
        let stats = CorpusStats::new();
        // One column similar to many copies: per-edge nsim must shrink
        // relative to the isolated-pair case.
        let base = make(0, vec!["Country"], vec![vec!["India", "Japan", "France"]]);
        let copies: Vec<WebTable> = (1..5)
            .map(|i| make(i, vec!["Country"], vec![vec!["India", "Japan", "France"]]))
            .collect();
        let mut views = vec![TableView::new(&base, &stats, 0.3)];
        for c in &copies {
            views.push(TableView::new(c, &stats, 0.3));
        }
        let edges = build_edges(&views, &cfg());
        let total_in: f64 = edges
            .iter()
            .filter(|e| e.a == (0, 0))
            .map(|e| e.nsim_ab)
            .sum();
        assert!(total_in <= 1.0 + 1e-9, "total incoming nsim {total_in}");
        // Isolated pair for comparison: one neighbor keeps most of its sim.
        let pair_views = vec![
            TableView::new(&base, &stats, 0.3),
            TableView::new(&copies[0], &stats, 0.3),
        ];
        let pair = build_edges(&pair_views, &cfg());
        assert_eq!(pair.len(), 1);
        let hub_edge = edges.iter().find(|e| e.a == (0, 0)).unwrap();
        assert!(
            hub_edge.nsim_ab < pair[0].nsim_ab,
            "hub nsim {} should shrink below pair nsim {}",
            hub_edge.nsim_ab,
            pair[0].nsim_ab
        );
        // Normalization never exceeds the raw similarity.
        assert!(pair[0].nsim_ab < pair[0].sim);
    }

    #[test]
    fn no_self_table_edges() {
        let stats = CorpusStats::new();
        let t1 = make(
            0,
            vec!["A", "B"],
            vec![
                vec!["x", "y"],
                vec!["x", "y"], // identical columns within the table
            ],
        );
        let views = vec![TableView::new(&t1, &stats, 0.3)];
        assert!(build_edges(&views, &cfg()).is_empty());
    }
}
