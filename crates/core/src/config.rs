//! Mapper configuration: model weights, reliability parameters and
//! thresholds, with the paper's published values as defaults.

/// The six trainable parameters of objective Eq. 9.
///
/// The paper trained `w1..w5, we` by exhaustive enumeration on a held-out
/// labeled set; [`crate::training::grid_search`] reproduces that procedure.
/// The defaults here were obtained the same way on the synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weights {
    /// Weight of the segmented similarity `SegSim` (Eq. 1).
    pub w1: f64,
    /// Weight of the query-coverage feature `Cover` (§3.2.2).
    pub w2: f64,
    /// Weight of the corpus co-occurrence feature `PMI²` (§3.2.3). Only
    /// used when [`MapperConfig::use_pmi`] is set (WWT does not use PMI²
    /// by default — §5.1).
    pub w3: f64,
    /// Weight of the irrelevance potential (`nr` label, Eq. 3).
    pub w4: f64,
    /// Negative bias disallowing query-column maps on tiny similarities.
    pub w5: f64,
    /// Weight of the cross-table edge potential (Eq. 4).
    pub we: f64,
}

impl Default for Weights {
    fn default() -> Self {
        Weights {
            w1: 1.0,
            w2: 0.6,
            w3: 0.4,
            w4: 0.5,
            w5: -0.35,
            we: 2.0,
        }
    }
}

/// Reliability of matches in the five out-of-header parts of a table
/// (§3.2.1). The paper estimated these empirically on its workload as
/// `(T, C, Hc, Hr, B) = (1.0, 0.9, 0.5, 1.0, 0.8)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartReliability {
    /// Title rows of the table.
    pub title: f64,
    /// Context extracted from the parent page.
    pub context: f64,
    /// Other header rows of the same column.
    pub other_header_rows: f64,
    /// Headers of other columns in the matched row.
    pub other_columns: f64,
    /// Frequent body content tokens.
    pub body: f64,
}

impl Default for PartReliability {
    fn default() -> Self {
        PartReliability {
            title: 1.0,
            context: 0.9,
            other_header_rows: 0.5,
            other_columns: 1.0,
            body: 0.8,
        }
    }
}

/// Which header similarity the node features use (the Figure 8 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimilarityMode {
    /// The paper's two-part segmented similarity (Eq. 1).
    #[default]
    Segmented,
    /// Standard IR practice: whole-query cosine / coverage against the
    /// concatenated column header, no segmentation, no out-of-header parts.
    Unsegmented,
}

/// Full configuration of the column mapper.
#[derive(Debug, Clone, PartialEq)]
pub struct MapperConfig {
    /// Trainable weights.
    pub weights: Weights,
    /// Part reliabilities for `outSim`.
    pub reliability: PartReliability,
    /// Segmented vs unsegmented similarity (Figure 8).
    pub similarity: SimilarityMode,
    /// Compute PMI² node features (requires a corpus index; expensive —
    /// the paper reports 40 s/query vs 6.7 s without). Off by default.
    pub use_pmi: bool,
    /// A token belongs to the frequent-body part `B` if some single column
    /// contains it in at least this fraction of its cells (min 2 cells).
    pub body_freq_frac: f64,
    /// `min-match`: minimum mapped columns for a relevant table when
    /// `q ≥ 2` (paper: 2). Always additionally capped at the table width.
    pub min_match: usize,
    /// Confidence gate for edge potentials: a column is confident when
    /// `max_{ℓ ∈ 1..q} Pr(ℓ|tc)` exceeds this (paper: 0.6).
    pub confidence_threshold: f64,
    /// Softmax temperature calibrating `Pr(ℓ|tc)` from max-marginals.
    /// Lower = sharper (more decisive confidence gating).
    pub calibration_temperature: f64,
    /// Smoothing constant λ of the `nsim` normalization (paper: 0.3).
    pub nsim_lambda: f64,
    /// Neighbors with raw similarity below this are ignored (paper: 0.1).
    pub min_column_sim: f64,
    /// Mix of cell-value overlap vs header cosine in column-column
    /// similarity (`sim = mix·overlap + (1−mix)·header_cos`).
    pub content_sim_mix: f64,
    /// Aggressive candidate pruning (off by default; **may change
    /// results**): tables whose relevant upper bound cannot beat all-`nr`
    /// are dropped from edge construction, and columns with zero header
    /// similarity to every query column have their query labels collapsed
    /// before message passing. Exact for [`SimilarityMode::Segmented`]
    /// independent inference; with edge potentials a pruned table can no
    /// longer be rescued by its neighbors, which is the approximation.
    pub early_exit: bool,
}

impl Default for MapperConfig {
    fn default() -> Self {
        MapperConfig {
            weights: Weights::default(),
            reliability: PartReliability::default(),
            similarity: SimilarityMode::default(),
            use_pmi: false,
            body_freq_frac: 0.3,
            min_match: 2,
            confidence_threshold: 0.6,
            calibration_temperature: 0.5,
            nsim_lambda: 0.3,
            min_column_sim: 0.1,
            content_sim_mix: 0.7,
            early_exit: false,
        }
    }
}

impl MapperConfig {
    /// Effective `min-match` for a query with `q` columns and a table with
    /// `nt` columns: 1 for single-column queries, else `min(min_match, nt)`
    /// (the paper is silent on `nt < m`; see DESIGN.md).
    pub fn effective_min_match(&self, q: usize, nt: usize) -> usize {
        if q < 2 {
            1
        } else {
            self.min_match.min(nt).max(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reliability_defaults() {
        let p = PartReliability::default();
        assert_eq!(
            (
                p.title,
                p.context,
                p.other_header_rows,
                p.other_columns,
                p.body
            ),
            (1.0, 0.9, 0.5, 1.0, 0.8)
        );
    }

    #[test]
    fn default_bias_is_negative() {
        assert!(Weights::default().w5 < 0.0);
    }

    #[test]
    fn effective_min_match_rules() {
        let c = MapperConfig::default();
        assert_eq!(c.effective_min_match(1, 5), 1);
        assert_eq!(c.effective_min_match(3, 5), 2);
        assert_eq!(c.effective_min_match(3, 1), 1);
        assert_eq!(c.effective_min_match(2, 2), 2);
    }

    #[test]
    fn default_thresholds_match_paper() {
        let c = MapperConfig::default();
        assert_eq!(c.confidence_threshold, 0.6);
        assert_eq!(c.nsim_lambda, 0.3);
        assert_eq!(c.min_column_sim, 0.1);
        assert!(!c.use_pmi);
    }
}
