//! # wwt-core
//!
//! The column mapper — the primary contribution of *Pimplikar & Sarawagi,
//! "Answering Table Queries on the Web using Column Keywords"* (VLDB 2012).
//!
//! Given a query `Q = (Q1..Qq)` and candidate web tables `T1..Tn`, decide
//! for each table whether it is relevant, and if so which of its columns
//! map to which query columns. The task is posed as joint MAP inference in
//! a graphical model over *column variables* with label space
//! `{1..q} ∪ {na, nr}` (§3.1):
//!
//! * **Node potentials** (§3.2, [`potentials`]) combine the segmented
//!   similarity [`features::seg_sim`] (Eq. 1), the query-coverage feature
//!   [`features::cover`] (§3.2.2), corpus-wide co-occurrence
//!   [`features::pmi2`] (§3.2.3) and table relevance
//!   [`features::table_relevance`] (Eq. 2).
//! * **Edge potentials** (§3.3, [`colsim`]) transfer labels between
//!   content-overlapping columns of different tables, with similarity
//!   normalization, confidence gating and one-one max-matching edges.
//! * **Table-level hard constraints** (§3.4): `mutex`, `all-Irr`,
//!   `must-match`, `min-match`.
//!
//! Inference ([`inference`], §4): exact per-table matching via min-cost
//! flow, table-centric collective inference via max-marginal messages
//! (Figure 3), and edge-centric alternatives (constrained α-expansion,
//! loopy BP, TRW-S) for the paper's Table 2 comparison.
//!
//! [`metrics::f1_error`] implements the evaluation measure of §5 and
//! [`training`] the exhaustive-enumeration parameter search the paper used.

pub mod colsim;
pub mod config;
pub mod features;
pub mod inference;
pub mod mapper;
pub mod metrics;
pub mod potentials;
pub mod training;
pub mod view;

pub use colsim::{EdgeStats, PairMemo};
pub use config::{MapperConfig, SimilarityMode, Weights};
pub use mapper::{ColumnMapper, InferenceAlgorithm, MapStats, MappingResult};
pub use metrics::f1_error;
pub use view::{TableFeatures, TableView};
