//! Node potentials θ(tc, ℓ) (paper Eq. 3).
//!
//! ```text
//! θ(tc, ℓ) = w1·SegSim + w2·Cover + w3·PMI² + w5        ℓ ∈ 1..q
//!          = w4 · (min(q,nt)/nt) · (1 − R(Q,t))          ℓ = nr
//!          = 0                                           ℓ = na
//! ```
//!
//! The negative bias `w5` disallows query-column maps justified only by
//! tiny similarities; the `nr` potential rewards marking a table irrelevant
//! when little of the query is covered (`R` low).

use crate::config::MapperConfig;
use crate::features::{cover, pmi2, seg_sim, table_relevance, QueryView};
use crate::view::TableView;
use wwt_index::DocSets;
use wwt_model::Label;

/// Dense node-potential table for one candidate web table:
/// `theta[c][Label::dense]` over the label space `Col(0..q-1), Na, Nr`.
#[derive(Debug, Clone)]
pub struct NodePotentials {
    /// Number of query columns.
    pub q: usize,
    /// `theta[c][l]` for the dense label order.
    pub theta: Vec<Vec<f64>>,
    /// The table-relevance feature `R(Q,t)` (kept for diagnostics).
    pub relevance: f64,
}

impl NodePotentials {
    /// θ for column `c` and label.
    #[inline]
    pub fn get(&self, c: usize, label: Label) -> f64 {
        self.theta[c][label.dense(self.q)]
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.theta.len()
    }

    /// Score of labeling all columns `nr` (used by the all-or-nothing
    /// relevance decision and by µ(nr) in Figure 3).
    pub fn all_nr_score(&self) -> f64 {
        (0..self.n_cols()).map(|c| self.theta[c][self.q + 1]).sum()
    }

    /// Score of a full labeling of this table under the node potentials.
    pub fn labeling_score(&self, labels: &[Label]) -> f64 {
        labels
            .iter()
            .enumerate()
            .map(|(c, &l)| self.get(c, l))
            .sum()
    }
}

/// Computes Eq. 3 for every column of `view`. `index` enables the PMI²
/// term when [`MapperConfig::use_pmi`] is set.
pub fn node_potentials(
    qv: &QueryView,
    view: &TableView<'_>,
    cfg: &MapperConfig,
    index: Option<&dyn DocSets>,
) -> NodePotentials {
    let q = qv.q();
    let nt = view.n_cols();
    let relevance = table_relevance(qv, view, cfg);
    let w = &cfg.weights;
    let nr_pot = w.w4 * ((q.min(nt)) as f64 / nt as f64) * (1.0 - relevance);
    let theta = (0..nt)
        .map(|c| {
            let mut row = Vec::with_capacity(q + 2);
            for qc in &qv.columns {
                let mut score = w.w1 * seg_sim(qc, view, c, cfg) + w.w2 * cover(qc, view, c, cfg);
                if cfg.use_pmi {
                    if let Some(idx) = index {
                        score += w.w3 * pmi2(qc, view, c, idx);
                    }
                }
                row.push(score + w.w5);
            }
            row.push(0.0); // na
            row.push(nr_pot); // nr
            row
        })
        .collect();
    NodePotentials {
        q,
        theta,
        relevance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_model::{Query, TableId, WebTable};
    use wwt_text::CorpusStats;

    fn currency_table() -> WebTable {
        WebTable::new(
            TableId(0),
            "u",
            None,
            vec![vec!["Country".into(), "Currency".into(), "ISO".into()]],
            vec![
                vec!["India".into(), "Rupee".into(), "INR".into()],
                vec!["Japan".into(), "Yen".into(), "JPY".into()],
            ],
            vec![],
        )
        .unwrap()
    }

    fn pots(query: &str, t: &WebTable) -> NodePotentials {
        let cfg = MapperConfig::default();
        let stats = CorpusStats::new();
        let qv = QueryView::new(&Query::parse(query).unwrap(), &stats);
        let view = TableView::new(t, &stats, cfg.body_freq_frac);
        node_potentials(&qv, &view, &cfg, None)
    }

    #[test]
    fn matching_column_beats_others() {
        let t = currency_table();
        let p = pots("country | currency", &t);
        // Column 0 ↔ Q1, column 1 ↔ Q2 dominate.
        assert!(p.get(0, Label::Col(0)) > p.get(0, Label::Col(1)));
        assert!(p.get(1, Label::Col(1)) > p.get(1, Label::Col(0)));
        assert!(p.get(0, Label::Col(0)) > p.get(2, Label::Col(0)));
    }

    #[test]
    fn na_is_zero_everywhere() {
        let t = currency_table();
        let p = pots("country | currency", &t);
        for c in 0..3 {
            assert_eq!(p.get(c, Label::Na), 0.0);
        }
    }

    #[test]
    fn nr_potential_high_for_irrelevant_table() {
        let t = currency_table();
        let relevant = pots("country | currency", &t);
        let irrelevant = pots("pain killers | company", &t);
        assert!(irrelevant.get(0, Label::Nr) > relevant.get(0, Label::Nr));
        assert!(irrelevant.relevance < relevant.relevance);
        // Unmatched query column potentials collapse to the bias.
        assert!(irrelevant.get(0, Label::Col(0)) < 0.0);
    }

    #[test]
    fn nr_scaled_by_query_table_width_ratio() {
        // Eq. 3 scales the nr potential by min(q, nt)/nt: wide tables get a
        // smaller per-column nr reward.
        let narrow = currency_table(); // nt = 3
        let wide = WebTable::new(
            TableId(1),
            "u",
            None,
            vec![(0..6).map(|i| format!("h{i}")).collect()],
            vec![(0..6).map(|i| format!("v{i}")).collect()],
            vec![],
        )
        .unwrap();
        let p_narrow = pots("x | y", &narrow);
        let p_wide = pots("x | y", &wide);
        // Same R (= 0); ratio 2/3 vs 2/6.
        assert!(p_narrow.get(0, Label::Nr) > p_wide.get(0, Label::Nr));
    }

    #[test]
    fn scores_and_helpers_consistent() {
        let t = currency_table();
        let p = pots("country | currency", &t);
        let labels = vec![Label::Col(0), Label::Col(1), Label::Na];
        let manual = p.get(0, Label::Col(0)) + p.get(1, Label::Col(1)) + p.get(2, Label::Na);
        assert!((p.labeling_score(&labels) - manual).abs() < 1e-12);
        let nr3 = p.get(0, Label::Nr) * 3.0;
        assert!((p.all_nr_score() - nr3).abs() < 1e-12);
    }
}
