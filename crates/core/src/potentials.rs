//! Node potentials θ(tc, ℓ) (paper Eq. 3).
//!
//! ```text
//! θ(tc, ℓ) = w1·SegSim + w2·Cover + w3·PMI² + w5        ℓ ∈ 1..q
//!          = w4 · (min(q,nt)/nt) · (1 − R(Q,t))          ℓ = nr
//!          = 0                                           ℓ = na
//! ```
//!
//! The negative bias `w5` disallows query-column maps justified only by
//! tiny similarities; the `nr` potential rewards marking a table irrelevant
//! when little of the query is covered (`R` low).
//!
//! # The bind-time fast path
//!
//! Evaluated naively, Eq. 3 runs the segmented similarity **three times**
//! per (query column, table column) pair: once inside `table_relevance`
//! (which needs `Cover` of every pair), and once each for the `SegSim`
//! and `Cover` terms of the θ row. When the view carries bind-time
//! [`crate::view::InternedFeatures`], [`node_potentials`] instead
//!
//! 1. resolves each query token to the table-local term id once,
//! 2. computes `SegSim` and `Cover` of every pair in **one fused pass**
//!    (they share the split enumeration, skip conditions, and out-part
//!    sums; only the in-similarity differs), and
//! 3. reuses that `Cover` matrix for `R(Q,t)` with the same fold order.
//!
//! One pass instead of three, and every membership/weight probe inside it
//! is an integer lookup — zero string hashing per query. The arithmetic
//! sequence per score is unchanged, so the result is **bit-identical** to
//! the string oracle (views built by [`TableFeatures::compute_oracle`]);
//! `tests/interned_equivalence.rs` pins this end to end and
//! [`tests::fast_path_matches_oracle_bitwise`] pins it per matrix entry.
//!
//! [`TableFeatures::compute_oracle`]: crate::view::TableFeatures::compute_oracle

use crate::config::{MapperConfig, SimilarityMode};
use crate::features::{
    bind_query_column, cover, pmi2, seg_and_cover_interned, seg_sim, table_relevance, QueryView,
};
use crate::view::TableView;
use wwt_index::DocSets;
use wwt_model::Label;

/// Dense node-potential table for one candidate web table:
/// `theta[c][Label::dense]` over the label space `Col(0..q-1), Na, Nr`.
#[derive(Debug, Clone)]
pub struct NodePotentials {
    /// Number of query columns.
    pub q: usize,
    /// `theta[c][l]` for the dense label order.
    pub theta: Vec<Vec<f64>>,
    /// The table-relevance feature `R(Q,t)` (kept for diagnostics).
    pub relevance: f64,
}

impl NodePotentials {
    /// θ for column `c` and label.
    #[inline]
    pub fn get(&self, c: usize, label: Label) -> f64 {
        self.theta[c][label.dense(self.q)]
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.theta.len()
    }

    /// Score of labeling all columns `nr` (used by the all-or-nothing
    /// relevance decision and by µ(nr) in Figure 3).
    pub fn all_nr_score(&self) -> f64 {
        (0..self.n_cols()).map(|c| self.theta[c][self.q + 1]).sum()
    }

    /// Score of a full labeling of this table under the node potentials.
    pub fn labeling_score(&self, labels: &[Label]) -> f64 {
        labels
            .iter()
            .enumerate()
            .map(|(c, &l)| self.get(c, l))
            .sum()
    }

    /// An upper bound on the score of **any relevant labeling**: per
    /// column the best of `0` (na) and the best query-label θ, summed in
    /// column order. Relevant labelings never use `nr`, so each column
    /// contributes at most its bound, and because IEEE addition is
    /// monotone the left-to-right sum of the bounds dominates the
    /// left-to-right sum of any labeling. Hence if
    /// `relevant_upper_bound() <= all_nr_score()`, no relevant labeling
    /// can beat all-`nr` under the strict `>` the relevance decision
    /// uses — [`crate::inference::solve_table`] exploits this as an
    /// always-on, provably exact early exit.
    pub fn relevant_upper_bound(&self) -> f64 {
        (0..self.n_cols())
            .map(|c| {
                self.theta[c][..self.q]
                    .iter()
                    .copied()
                    .fold(0.0f64, f64::max)
            })
            .sum()
    }
}

/// Computes Eq. 3 for every column of `view`. `index` enables the PMI²
/// term when [`MapperConfig::use_pmi`] is set.
///
/// Views carrying interned bind-time features take the fused fast path;
/// all others run the original string oracle. Both produce bit-identical
/// potentials (see the module docs).
pub fn node_potentials(
    qv: &QueryView,
    view: &TableView<'_>,
    cfg: &MapperConfig,
    index: Option<&dyn DocSets>,
) -> NodePotentials {
    if cfg.similarity == SimilarityMode::Segmented {
        if let Some(f) = view.interned() {
            if f.supports_potentials() {
                return node_potentials_fast(qv, view, cfg, index);
            }
        }
    }
    node_potentials_oracle(qv, view, cfg, index)
}

/// The original string-path implementation — the oracle the fast path is
/// pinned against (kept verbatim; also serves `SimilarityMode::Unsegmented`
/// and views without interned features).
pub fn node_potentials_oracle(
    qv: &QueryView,
    view: &TableView<'_>,
    cfg: &MapperConfig,
    index: Option<&dyn DocSets>,
) -> NodePotentials {
    let q = qv.q();
    let nt = view.n_cols();
    let relevance = table_relevance(qv, view, cfg);
    let w = &cfg.weights;
    let nr_pot = w.w4 * ((q.min(nt)) as f64 / nt as f64) * (1.0 - relevance);
    let theta = (0..nt)
        .map(|c| {
            let mut row = Vec::with_capacity(q + 2);
            for qc in &qv.columns {
                let mut score = w.w1 * seg_sim(qc, view, c, cfg) + w.w2 * cover(qc, view, c, cfg);
                if cfg.use_pmi {
                    if let Some(idx) = index {
                        score += w.w3 * pmi2(qc, view, c, idx);
                    }
                }
                row.push(score + w.w5);
            }
            row.push(0.0); // na
            row.push(nr_pot); // nr
            row
        })
        .collect();
    NodePotentials {
        q,
        theta,
        relevance,
    }
}

/// The fused interned fast path: one `SegSim`+`Cover` pass per pair, the
/// `Cover` matrix shared with `R(Q,t)`. Requires
/// `view.interned().is_some_and(|f| f.supports_potentials())` and
/// segmented similarity (the caller dispatches).
fn node_potentials_fast(
    qv: &QueryView,
    view: &TableView<'_>,
    cfg: &MapperConfig,
    index: Option<&dyn DocSets>,
) -> NodePotentials {
    let f = view
        .interned()
        .expect("fast path requires interned features");
    let q = qv.q();
    let nt = view.n_cols();
    let rel = &cfg.reliability;
    let bound: Vec<_> = qv
        .columns
        .iter()
        .map(|qc| bind_query_column(qc, f, rel))
        .collect();
    // seg[qc][c] / cov[qc][c] in one fused pass per pair.
    let mut seg = vec![vec![0.0f64; nt]; q];
    let mut cov = vec![vec![0.0f64; nt]; q];
    for (i, qc) in qv.columns.iter().enumerate() {
        for c in 0..nt {
            let (s, v) = seg_and_cover_interned(qc, &bound[i], view, f, c, rel);
            seg[i][c] = s;
            cov[i][c] = v;
        }
    }
    // R(Q,t) from the shared Cover matrix — fold order identical to
    // `table_relevance` (per query column: max over table columns in
    // column order; then summed in query-column order).
    let relevance = if q == 0 {
        0.0
    } else {
        let total: f64 = cov
            .iter()
            .map(|row| row.iter().copied().fold(0.0, f64::max))
            .sum();
        let bar = (q as f64).min(1.5);
        let clipped = if total < bar { 0.0 } else { total };
        clipped / q as f64
    };
    let w = &cfg.weights;
    let nr_pot = w.w4 * ((q.min(nt)) as f64 / nt as f64) * (1.0 - relevance);
    let theta = (0..nt)
        .map(|c| {
            let mut row = Vec::with_capacity(q + 2);
            for (i, qc) in qv.columns.iter().enumerate() {
                let mut score = w.w1 * seg[i][c] + w.w2 * cov[i][c];
                if cfg.use_pmi {
                    if let Some(idx) = index {
                        score += w.w3 * pmi2(qc, view, c, idx);
                    }
                }
                row.push(score + w.w5);
            }
            row.push(0.0); // na
            row.push(nr_pot); // nr
            row
        })
        .collect();
    NodePotentials {
        q,
        theta,
        relevance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_model::{Query, TableId, WebTable};
    use wwt_text::CorpusStats;

    fn currency_table() -> WebTable {
        WebTable::new(
            TableId(0),
            "u",
            None,
            vec![vec!["Country".into(), "Currency".into(), "ISO".into()]],
            vec![
                vec!["India".into(), "Rupee".into(), "INR".into()],
                vec!["Japan".into(), "Yen".into(), "JPY".into()],
            ],
            vec![],
        )
        .unwrap()
    }

    fn pots(query: &str, t: &WebTable) -> NodePotentials {
        let cfg = MapperConfig::default();
        let stats = CorpusStats::new();
        let qv = QueryView::new(&Query::parse(query).unwrap(), &stats);
        let view = TableView::new(t, &stats, cfg.body_freq_frac);
        node_potentials(&qv, &view, &cfg, None)
    }

    #[test]
    fn matching_column_beats_others() {
        let t = currency_table();
        let p = pots("country | currency", &t);
        // Column 0 ↔ Q1, column 1 ↔ Q2 dominate.
        assert!(p.get(0, Label::Col(0)) > p.get(0, Label::Col(1)));
        assert!(p.get(1, Label::Col(1)) > p.get(1, Label::Col(0)));
        assert!(p.get(0, Label::Col(0)) > p.get(2, Label::Col(0)));
    }

    #[test]
    fn na_is_zero_everywhere() {
        let t = currency_table();
        let p = pots("country | currency", &t);
        for c in 0..3 {
            assert_eq!(p.get(c, Label::Na), 0.0);
        }
    }

    #[test]
    fn nr_potential_high_for_irrelevant_table() {
        let t = currency_table();
        let relevant = pots("country | currency", &t);
        let irrelevant = pots("pain killers | company", &t);
        assert!(irrelevant.get(0, Label::Nr) > relevant.get(0, Label::Nr));
        assert!(irrelevant.relevance < relevant.relevance);
        // Unmatched query column potentials collapse to the bias.
        assert!(irrelevant.get(0, Label::Col(0)) < 0.0);
    }

    #[test]
    fn nr_scaled_by_query_table_width_ratio() {
        // Eq. 3 scales the nr potential by min(q, nt)/nt: wide tables get a
        // smaller per-column nr reward.
        let narrow = currency_table(); // nt = 3
        let wide = WebTable::new(
            TableId(1),
            "u",
            None,
            vec![(0..6).map(|i| format!("h{i}")).collect()],
            vec![(0..6).map(|i| format!("v{i}")).collect()],
            vec![],
        )
        .unwrap();
        let p_narrow = pots("x | y", &narrow);
        let p_wide = pots("x | y", &wide);
        // Same R (= 0); ratio 2/3 vs 2/6.
        assert!(p_narrow.get(0, Label::Nr) > p_wide.get(0, Label::Nr));
    }

    #[test]
    fn fast_path_matches_oracle_bitwise() {
        // Rich table: multi-row headers, title, context, frequent body
        // tokens — exercises every outSim part and the split loop.
        let t = WebTable::new(
            TableId(7),
            "u",
            Some("Currencies of the world".into()),
            vec![
                vec!["Country".into(), "Currency name".into(), "ISO".into()],
                vec!["".into(), "official".into(), "code".into()],
            ],
            vec![
                vec!["India".into(), "Indian Rupee".into(), "INR".into()],
                vec!["Japan".into(), "Japanese Yen".into(), "JPY".into()],
                vec!["France".into(), "Euro".into(), "EUR".into()],
            ],
            vec![wwt_model::ContextSnippet::new(
                "list of official currencies by country",
                0.9,
            )],
        )
        .unwrap();
        let cfg = MapperConfig::default();
        let stats = CorpusStats::new();
        for query in [
            "country | currency",
            "official currency name | iso code",
            "currencies of the world",
            "unrelated query words",
        ] {
            let qv = QueryView::new(&Query::parse(query).unwrap(), &stats);
            let fast_view = TableView::new(&t, &stats, cfg.body_freq_frac);
            let oracle_view = TableView::new_oracle(&t, &stats, cfg.body_freq_frac);
            assert!(fast_view.interned().is_some());
            assert!(oracle_view.interned().is_none());
            let fast = node_potentials(&qv, &fast_view, &cfg, None);
            let oracle = node_potentials(&qv, &oracle_view, &cfg, None);
            assert_eq!(
                fast.relevance.to_bits(),
                oracle.relevance.to_bits(),
                "{query}: relevance"
            );
            for (c, (fr, or)) in fast.theta.iter().zip(&oracle.theta).enumerate() {
                for (l, (a, b)) in fr.iter().zip(or).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "{query}: theta[{c}][{l}]");
                }
            }
        }
    }

    #[test]
    fn relevant_upper_bound_dominates_labelings() {
        let t = currency_table();
        let p = pots("country | currency", &t);
        let ub = p.relevant_upper_bound();
        // Exhaustive over all labelings of 3 columns with labels
        // {Col0, Col1, Na} (relevant labelings never use Nr).
        let labels = [Label::Col(0), Label::Col(1), Label::Na];
        for a in labels {
            for b in labels {
                for c in labels {
                    let score = p.labeling_score(&[a, b, c]);
                    assert!(score <= ub, "{a:?}{b:?}{c:?}: {score} > {ub}");
                }
            }
        }
    }

    #[test]
    fn scores_and_helpers_consistent() {
        let t = currency_table();
        let p = pots("country | currency", &t);
        let labels = vec![Label::Col(0), Label::Col(1), Label::Na];
        let manual = p.get(0, Label::Col(0)) + p.get(1, Label::Col(1)) + p.get(2, Label::Na);
        assert!((p.labeling_score(&labels) - manual).abs() < 1e-12);
        let nr3 = p.get(0, Label::Nr) * 3.0;
        assert!((p.all_nr_score() - nr3).abs() < 1e-12);
    }
}
