//! Preprocessed per-table view: everything the features need, computed once
//! per candidate table (tokenized headers, part token sets, TF-IDF vectors,
//! frequent-body tokens, normalized cell-value sets).
//!
//! The expensive part — [`TableFeatures`] — is a pure function of the
//! table, the corpus statistics and `body_freq_frac`, so an engine can
//! compute it **once per table at bind time** and share it (`Arc`) across
//! every query instead of re-tokenizing the same tables per request.
//! [`TableView`] pairs those features with the borrowed table; it derefs
//! to the features, so feature code reads `view.header_vecs[r][c]`
//! without caring whether the features were precomputed or built on the
//! spot.

use std::collections::{BTreeMap, HashSet};
use std::ops::Deref;
use std::sync::Arc;
use wwt_model::WebTable;
use wwt_text::{normalize_cell, tokenize, CorpusStats, TfIdfVector};

/// FNV-1a over the bytes of `s` — the deterministic content signature used
/// by the edge-construction index. Equal strings always collide (that is
/// the point); unequal strings colliding is harmless because admitted
/// column pairs still get their exact similarity computed.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Domain tag separating header-term signatures from cell-value
/// signatures in the shared bucket space.
const HEADER_SIG_TAG: u64 = 0x9e37_79b9_7f4a_7c15;

/// One header cell's TF-IDF vector re-keyed by table-local term ids, with
/// the weights (and norm) **copied** from the string vector so lookups
/// return bit-identical values.
#[derive(Debug)]
pub struct InternedCell {
    /// `(term_id, weight)` sorted by id.
    ids: Vec<(u32, f64)>,
    /// `‖·‖` copied from [`TfIdfVector::norm`].
    norm: f64,
}

impl InternedCell {
    /// Weight of term `id` (0.0 when absent) — mirrors
    /// [`TfIdfVector::weight`].
    #[inline]
    pub fn weight(&self, id: u32) -> f64 {
        match self.ids.binary_search_by_key(&id, |&(i, _)| i) {
            Ok(pos) => self.ids[pos].1,
            Err(_) => 0.0,
        }
    }

    /// Mirrors [`TfIdfVector::is_empty`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Mirrors [`TfIdfVector::norm`] (the value was copied at build).
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm
    }
}

/// Integer mirror of the query-independent halves of `SegSim`/`Cover`,
/// built once per table (at engine bind or live ingest) so per-query
/// feature evaluation does **zero string hashing**.
///
/// Terms are interned into a *table-local* sorted vocabulary; a query
/// token is resolved once per (query column, table) by binary search and
/// every subsequent membership or weight probe is an integer lookup:
///
/// * `title`/`context`/`body` — per-term part-membership flags;
/// * `row_cols[r]` — per term, the bitmask of columns whose row-`r`
///   header contains it (part `Hr`: "other columns, same row");
/// * `col_rows[c]` — per term, the bitmask of header rows of column `c`
///   containing it (part `Hc`: "other rows, same column");
/// * `header_cells[r][c]` — the cell's TF-IDF vector keyed by term id
///   with weights copied verbatim from the string vector.
///
/// The bitmask layout requires `n_cols ≤ 64` and `n_header_rows ≤ 64`;
/// wider tables keep `supports_potentials() == false` and take the
/// string path (the two paths are bit-identical by construction, and the
/// differential harness pins it).
///
/// Independent of the masks, `value_sigs`/`header_sigs` carry sorted
/// FNV-1a signatures of each column's normalized cell values and header
/// terms — the posting keys of the per-query edge-construction index
/// ([`crate::colsim::build_edges`]).
#[derive(Debug)]
pub struct InternedFeatures {
    /// Sorted distinct tokens of the table (headers ∪ title ∪ context ∪
    /// frequent body tokens).
    vocab: Vec<String>,
    /// Per-term membership in the title part `T`.
    title: Vec<bool>,
    /// Per-term membership in the context part `C`.
    context: Vec<bool>,
    /// Per-term membership in the frequent-body part `B`.
    body: Vec<bool>,
    /// Per header row: sorted `(term_id, column bitmask)`.
    row_cols: Vec<Vec<(u32, u64)>>,
    /// Per column: sorted `(term_id, header-row bitmask)`.
    col_rows: Vec<Vec<(u32, u64)>>,
    /// Interned mirror of `header_vecs`.
    header_cells: Vec<Vec<InternedCell>>,
    /// True when the bitmask tables above are populated (`n_cols ≤ 64`
    /// and `n_header_rows ≤ 64`).
    masks_valid: bool,
    /// Sorted FNV-1a signatures of each column's normalized cell values.
    pub value_sigs: Vec<Vec<u64>>,
    /// Sorted FNV-1a signatures (tagged) of each column's header terms.
    pub header_sigs: Vec<Vec<u64>>,
}

impl InternedFeatures {
    /// Resolves a query token to this table's local term id.
    #[inline]
    pub fn resolve(&self, token: &str) -> Option<u32> {
        self.vocab
            .binary_search_by(|v| v.as_str().cmp(token))
            .ok()
            .map(|i| i as u32)
    }

    /// True when the interned potential fast path may run for this table.
    #[inline]
    pub fn supports_potentials(&self) -> bool {
        self.masks_valid
    }

    /// Term membership in the title part.
    #[inline]
    pub fn in_title(&self, id: u32) -> bool {
        self.title[id as usize]
    }

    /// Term membership in the context part.
    #[inline]
    pub fn in_context(&self, id: u32) -> bool {
        self.context[id as usize]
    }

    /// Term membership in the frequent-body part.
    #[inline]
    pub fn in_body(&self, id: u32) -> bool {
        self.body[id as usize]
    }

    /// Mirrors [`TableView::in_other_header_rows`] on term ids.
    #[inline]
    pub fn in_other_header_rows(&self, id: u32, r: usize, c: usize) -> bool {
        match self.col_rows[c].binary_search_by_key(&id, |&(i, _)| i) {
            Ok(pos) => self.col_rows[c][pos].1 & !(1u64 << r) != 0,
            Err(_) => false,
        }
    }

    /// Mirrors [`TableView::in_other_columns`] on term ids.
    #[inline]
    pub fn in_other_columns(&self, id: u32, r: usize, c: usize) -> bool {
        match self.row_cols[r].binary_search_by_key(&id, |&(i, _)| i) {
            Ok(pos) => self.row_cols[r][pos].1 & !(1u64 << c) != 0,
            Err(_) => false,
        }
    }

    /// The interned header cell `(r, c)`.
    #[inline]
    pub fn cell(&self, r: usize, c: usize) -> &InternedCell {
        &self.header_cells[r][c]
    }
}

/// The precomputable, table-owned half of a [`TableView`].
#[derive(Debug)]
pub struct TableFeatures {
    /// Tokenized header cell `H_rc` per header row r, column c.
    pub header_tokens: Vec<Vec<Vec<String>>>,
    /// TF-IDF vector of each header cell.
    pub header_vecs: Vec<Vec<TfIdfVector>>,
    /// TF-IDF vector of the concatenated headers of each column (for the
    /// unsegmented baseline and column-column similarity).
    pub column_header_vecs: Vec<TfIdfVector>,
    /// Title tokens (part `T`).
    pub title_set: HashSet<String>,
    /// Context tokens (part `C`).
    pub context_set: HashSet<String>,
    /// Frequent body tokens (part `B`): tokens appearing in at least
    /// `body_freq_frac` of some single column's cells.
    pub body_frequent: HashSet<String>,
    /// Normalized distinct cell values per column, **sorted** — content
    /// overlap is a sorted-merge intersection count (no per-value string
    /// hashing in the O(tables²) edge-construction loop).
    pub column_values: Vec<Vec<String>>,
    /// The integer mirror of the fields above, present on the fast path
    /// ([`TableFeatures::compute`]) and absent on the string-only oracle
    /// path ([`TableFeatures::compute_oracle`]).
    pub interned: Option<InternedFeatures>,
}

impl TableFeatures {
    /// Computes the features. `stats` supplies IDF; `body_freq_frac` is
    /// [`crate::MapperConfig::body_freq_frac`]. Deterministic: the same
    /// inputs always produce identical features, which is what lets a
    /// bind-time precompute stand in for the per-query computation
    /// byte-for-byte.
    pub fn compute(table: &WebTable, stats: &CorpusStats, body_freq_frac: f64) -> Self {
        let mut f = Self::compute_oracle(table, stats, body_freq_frac);
        f.interned = Some(f.intern(table));
        f
    }

    /// [`TableFeatures::compute`] without the interned mirror — the
    /// string-only oracle the differential harness compares the fast
    /// path against. Both produce identical feature values; only the
    /// lookup machinery differs.
    pub fn compute_oracle(table: &WebTable, stats: &CorpusStats, body_freq_frac: f64) -> Self {
        let h = table.n_header_rows();
        let nc = table.n_cols();

        let header_tokens: Vec<Vec<Vec<String>>> = (0..h)
            .map(|r| (0..nc).map(|c| tokenize(table.header(r, c))).collect())
            .collect();
        let header_vecs: Vec<Vec<TfIdfVector>> = header_tokens
            .iter()
            .map(|row| {
                row.iter()
                    .map(|toks| TfIdfVector::from_tokens(toks, stats))
                    .collect()
            })
            .collect();
        let column_header_vecs: Vec<TfIdfVector> = (0..nc)
            .map(|c| {
                let all: Vec<String> = (0..h)
                    .flat_map(|r| header_tokens[r][c].iter().cloned())
                    .collect();
                TfIdfVector::from_tokens(&all, stats)
            })
            .collect();

        let title_set: HashSet<String> = table
            .title
            .as_deref()
            .map(tokenize)
            .unwrap_or_default()
            .into_iter()
            .collect();
        let context_set: HashSet<String> = table
            .context
            .iter()
            .flat_map(|s| tokenize(&s.text))
            .collect();

        // Frequent body tokens, per column.
        let mut body_frequent = HashSet::new();
        let n_rows = table.n_rows();
        let min_count = ((n_rows as f64 * body_freq_frac).ceil() as usize).max(2);
        for c in 0..nc {
            let mut counts: std::collections::HashMap<String, usize> =
                std::collections::HashMap::new();
            for cell in table.column(c) {
                let mut seen_in_cell = HashSet::new();
                for tok in tokenize(cell) {
                    if seen_in_cell.insert(tok.clone()) {
                        *counts.entry(tok).or_insert(0) += 1;
                    }
                }
            }
            for (tok, n) in counts {
                if n >= min_count {
                    body_frequent.insert(tok);
                }
            }
        }

        let column_values: Vec<Vec<String>> = (0..nc)
            .map(|c| {
                let mut vals: Vec<String> = table
                    .column(c)
                    .map(normalize_cell)
                    .filter(|v| !v.is_empty())
                    .collect();
                vals.sort_unstable();
                vals.dedup();
                vals
            })
            .collect();

        TableFeatures {
            header_tokens,
            header_vecs,
            column_header_vecs,
            title_set,
            context_set,
            body_frequent,
            column_values,
            interned: None,
        }
    }

    /// Builds the integer mirror of the already-computed string features.
    /// Pure re-keying: every weight, norm and membership bit is derived
    /// from (or copied out of) the string structures, never recomputed,
    /// so integer lookups return bit-identical values.
    fn intern(&self, table: &WebTable) -> InternedFeatures {
        let h = table.n_header_rows();
        let nc = table.n_cols();

        let mut vocab: Vec<String> = self
            .title_set
            .iter()
            .chain(self.context_set.iter())
            .chain(self.body_frequent.iter())
            .cloned()
            .collect();
        for row in &self.header_tokens {
            for cell in row {
                vocab.extend(cell.iter().cloned());
            }
        }
        vocab.sort_unstable();
        vocab.dedup();

        let id_of = |tok: &str| -> u32 {
            vocab
                .binary_search_by(|v| v.as_str().cmp(tok))
                .expect("vocab contains every table token") as u32
        };
        let flags = |set: &HashSet<String>| -> Vec<bool> {
            vocab.iter().map(|t| set.contains(t)).collect()
        };

        let masks_valid = nc <= 64 && h <= 64;
        let (mut row_cols, mut col_rows) = (Vec::new(), Vec::new());
        if masks_valid {
            let mut by_row: Vec<BTreeMap<u32, u64>> = vec![BTreeMap::new(); h];
            let mut by_col: Vec<BTreeMap<u32, u64>> = vec![BTreeMap::new(); nc];
            for r in 0..h {
                for c in 0..nc {
                    for tok in &self.header_tokens[r][c] {
                        let id = id_of(tok);
                        *by_row[r].entry(id).or_insert(0) |= 1u64 << c;
                        *by_col[c].entry(id).or_insert(0) |= 1u64 << r;
                    }
                }
            }
            row_cols = by_row
                .into_iter()
                .map(|m| m.into_iter().collect())
                .collect();
            col_rows = by_col
                .into_iter()
                .map(|m| m.into_iter().collect())
                .collect();
        }

        let header_cells: Vec<Vec<InternedCell>> = self
            .header_vecs
            .iter()
            .map(|row| {
                row.iter()
                    .map(|v| {
                        let mut ids: Vec<(u32, f64)> =
                            v.iter().map(|(t, w)| (id_of(t), w)).collect();
                        ids.sort_unstable_by_key(|&(i, _)| i);
                        InternedCell {
                            ids,
                            norm: v.norm(),
                        }
                    })
                    .collect()
            })
            .collect();

        let value_sigs: Vec<Vec<u64>> = self
            .column_values
            .iter()
            .map(|vals| {
                let mut sigs: Vec<u64> = vals.iter().map(|v| fnv1a(v)).collect();
                sigs.sort_unstable();
                sigs.dedup();
                sigs
            })
            .collect();
        let header_sigs: Vec<Vec<u64>> = self
            .column_header_vecs
            .iter()
            .map(|v| {
                let mut sigs: Vec<u64> = v.iter().map(|(t, _)| fnv1a(t) ^ HEADER_SIG_TAG).collect();
                sigs.sort_unstable();
                sigs.dedup();
                sigs
            })
            .collect();

        InternedFeatures {
            title: flags(&self.title_set),
            context: flags(&self.context_set),
            body: flags(&self.body_frequent),
            vocab,
            row_cols,
            col_rows,
            header_cells,
            masks_valid,
            value_sigs,
            header_sigs,
        }
    }
}

/// Owned-or-shared features behind a view (boxed either way, so the
/// view stays one pointer wide per arm).
enum Feats {
    Owned(Box<TableFeatures>),
    Shared(Arc<TableFeatures>),
}

/// Feature-ready view over one [`WebTable`].
pub struct TableView<'t> {
    /// The underlying table.
    pub table: &'t WebTable,
    feats: Feats,
}

impl Deref for TableView<'_> {
    type Target = TableFeatures;

    fn deref(&self) -> &TableFeatures {
        match &self.feats {
            Feats::Owned(f) => f,
            Feats::Shared(f) => f,
        }
    }
}

impl<'t> TableView<'t> {
    /// Builds the view, computing features on the spot.
    pub fn new(table: &'t WebTable, stats: &CorpusStats, body_freq_frac: f64) -> Self {
        TableView {
            table,
            feats: Feats::Owned(Box::new(TableFeatures::compute(
                table,
                stats,
                body_freq_frac,
            ))),
        }
    }

    /// Builds the view on the string-only oracle path (no interned
    /// mirror): every feature evaluates through the original string
    /// lookups. Used by the differential harness (and engines bound with
    /// `precompute_views` off) to pin the fast path bit-for-bit.
    pub fn new_oracle(table: &'t WebTable, stats: &CorpusStats, body_freq_frac: f64) -> Self {
        TableView {
            table,
            feats: Feats::Owned(Box::new(TableFeatures::compute_oracle(
                table,
                stats,
                body_freq_frac,
            ))),
        }
    }

    /// A view over precomputed features ([`TableFeatures::compute`] run
    /// earlier for this exact table with the same statistics and
    /// configuration — the caller's contract).
    pub fn with_features(table: &'t WebTable, features: Arc<TableFeatures>) -> Self {
        TableView {
            table,
            feats: Feats::Shared(features),
        }
    }

    /// The interned fast-path mirror, when this view carries one.
    #[inline]
    pub fn interned(&self) -> Option<&InternedFeatures> {
        self.deref().interned.as_ref()
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.table.n_cols()
    }

    /// Number of header rows.
    pub fn n_header_rows(&self) -> usize {
        self.table.n_header_rows()
    }

    /// True iff token `w` appears in header row `r'` ≠ `r` of column `c`
    /// (part `Hc` of `outSim`).
    pub fn in_other_header_rows(&self, w: &str, r: usize, c: usize) -> bool {
        (0..self.n_header_rows())
            .filter(|&r2| r2 != r)
            .any(|r2| self.header_tokens[r2][c].iter().any(|t| t == w))
    }

    /// True iff token `w` appears in the header of another column `c'` ≠
    /// `c` in row `r` (part `Hr` of `outSim`).
    pub fn in_other_columns(&self, w: &str, r: usize, c: usize) -> bool {
        (0..self.n_cols())
            .filter(|&c2| c2 != c)
            .any(|c2| self.header_tokens[r][c2].iter().any(|t| t == w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_model::{ContextSnippet, TableId};

    fn bands_table() -> WebTable {
        WebTable::new(
            TableId(0),
            "u",
            None,
            vec![vec!["Band name".into(), "Country".into(), "Genre".into()]],
            vec![
                vec!["Mayhem".into(), "Norway".into(), "Black metal".into()],
                vec!["Burzum".into(), "Norway".into(), "Black metal".into()],
                vec!["Opeth".into(), "Sweden".into(), "Death metal".into()],
            ],
            vec![],
        )
        .unwrap()
    }

    fn view(t: &WebTable) -> TableView<'_> {
        // Leak-free: tests construct stats locally.
        TableView::new(t, &CorpusStats::new(), 0.3)
    }

    #[test]
    fn frequent_body_tokens_found() {
        let t = bands_table();
        let v = view(&t);
        // "metal" in 3/3 cells of column 2; "black" in 2/3; "norway" 2/3.
        assert!(v.body_frequent.contains("metal"));
        assert!(v.body_frequent.contains("black"));
        assert!(v.body_frequent.contains("norway"));
        // "mayhem" appears once — not frequent.
        assert!(!v.body_frequent.contains("mayhem"));
    }

    #[test]
    fn column_values_normalized() {
        let t = bands_table();
        let v = view(&t);
        assert!(v.column_values[2].iter().any(|s| s == "black metal"));
        assert_eq!(v.column_values[1].len(), 2); // norway, sweden
                                                 // Sorted + deduplicated: the contract the merge-count relies on.
        assert!(v.column_values[2].windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn header_tokens_and_vecs() {
        let t = bands_table();
        let v = view(&t);
        assert_eq!(v.header_tokens[0][0], vec!["band", "name"]);
        assert!(v.column_header_vecs[0].weight("band") > 0.0);
    }

    #[test]
    fn shared_features_behave_like_owned() {
        let t = bands_table();
        let stats = CorpusStats::new();
        let owned = TableView::new(&t, &stats, 0.3);
        let shared =
            TableView::with_features(&t, Arc::new(TableFeatures::compute(&t, &stats, 0.3)));
        assert_eq!(owned.header_tokens, shared.header_tokens);
        assert_eq!(owned.body_frequent, shared.body_frequent);
        assert_eq!(owned.column_values, shared.column_values);
        for (a, b) in owned
            .column_header_vecs
            .iter()
            .zip(&shared.column_header_vecs)
        {
            let (av, bv): (Vec<_>, Vec<_>) = (a.iter().collect(), b.iter().collect());
            assert_eq!(av, bv);
        }
        assert_eq!(owned.n_cols(), shared.n_cols());
    }

    #[test]
    fn part_membership_helpers() {
        let t = WebTable::new(
            TableId(1),
            "u",
            Some("Explorers of the world".into()),
            vec![
                vec!["Name".into(), "Main areas".into()],
                vec!["".into(), "explored".into()],
            ],
            vec![vec!["Tasman".into(), "Oceania".into()]; 2],
            vec![ContextSnippet::new("list of famous explorers", 0.9)],
        )
        .unwrap();
        let v = view(&t);
        assert!(v.title_set.contains("explorer"));
        assert!(v.context_set.contains("famous"));
        // "explored" is in header row 1 of column 1: visible from row 0.
        assert!(v.in_other_header_rows("explored", 0, 1));
        assert!(!v.in_other_header_rows("explored", 1, 1));
        // "name" is in column 0's row-0 header: visible from column 1.
        assert!(v.in_other_columns("name", 0, 1));
        assert!(!v.in_other_columns("name", 0, 0));
    }

    #[test]
    fn headerless_table_view() {
        let t = WebTable::new(
            TableId(2),
            "u",
            None,
            vec![],
            vec![vec!["a".into(), "b".into()]; 3],
            vec![],
        )
        .unwrap();
        let v = view(&t);
        assert_eq!(v.n_header_rows(), 0);
        assert!(v.column_header_vecs[0].is_empty());
    }
}
