//! Preprocessed per-table view: everything the features need, computed once
//! per candidate table (tokenized headers, part token sets, TF-IDF vectors,
//! frequent-body tokens, normalized cell-value sets).
//!
//! The expensive part — [`TableFeatures`] — is a pure function of the
//! table, the corpus statistics and `body_freq_frac`, so an engine can
//! compute it **once per table at bind time** and share it (`Arc`) across
//! every query instead of re-tokenizing the same tables per request.
//! [`TableView`] pairs those features with the borrowed table; it derefs
//! to the features, so feature code reads `view.header_vecs[r][c]`
//! without caring whether the features were precomputed or built on the
//! spot.

use std::collections::HashSet;
use std::ops::Deref;
use std::sync::Arc;
use wwt_model::WebTable;
use wwt_text::{normalize_cell, tokenize, CorpusStats, TfIdfVector};

/// The precomputable, table-owned half of a [`TableView`].
#[derive(Debug)]
pub struct TableFeatures {
    /// Tokenized header cell `H_rc` per header row r, column c.
    pub header_tokens: Vec<Vec<Vec<String>>>,
    /// TF-IDF vector of each header cell.
    pub header_vecs: Vec<Vec<TfIdfVector>>,
    /// TF-IDF vector of the concatenated headers of each column (for the
    /// unsegmented baseline and column-column similarity).
    pub column_header_vecs: Vec<TfIdfVector>,
    /// Title tokens (part `T`).
    pub title_set: HashSet<String>,
    /// Context tokens (part `C`).
    pub context_set: HashSet<String>,
    /// Frequent body tokens (part `B`): tokens appearing in at least
    /// `body_freq_frac` of some single column's cells.
    pub body_frequent: HashSet<String>,
    /// Normalized distinct cell values per column, **sorted** — content
    /// overlap is a sorted-merge intersection count (no per-value string
    /// hashing in the O(tables²) edge-construction loop).
    pub column_values: Vec<Vec<String>>,
}

impl TableFeatures {
    /// Computes the features. `stats` supplies IDF; `body_freq_frac` is
    /// [`crate::MapperConfig::body_freq_frac`]. Deterministic: the same
    /// inputs always produce identical features, which is what lets a
    /// bind-time precompute stand in for the per-query computation
    /// byte-for-byte.
    pub fn compute(table: &WebTable, stats: &CorpusStats, body_freq_frac: f64) -> Self {
        let h = table.n_header_rows();
        let nc = table.n_cols();

        let header_tokens: Vec<Vec<Vec<String>>> = (0..h)
            .map(|r| (0..nc).map(|c| tokenize(table.header(r, c))).collect())
            .collect();
        let header_vecs: Vec<Vec<TfIdfVector>> = header_tokens
            .iter()
            .map(|row| {
                row.iter()
                    .map(|toks| TfIdfVector::from_tokens(toks, stats))
                    .collect()
            })
            .collect();
        let column_header_vecs: Vec<TfIdfVector> = (0..nc)
            .map(|c| {
                let all: Vec<String> = (0..h)
                    .flat_map(|r| header_tokens[r][c].iter().cloned())
                    .collect();
                TfIdfVector::from_tokens(&all, stats)
            })
            .collect();

        let title_set: HashSet<String> = table
            .title
            .as_deref()
            .map(tokenize)
            .unwrap_or_default()
            .into_iter()
            .collect();
        let context_set: HashSet<String> = table
            .context
            .iter()
            .flat_map(|s| tokenize(&s.text))
            .collect();

        // Frequent body tokens, per column.
        let mut body_frequent = HashSet::new();
        let n_rows = table.n_rows();
        let min_count = ((n_rows as f64 * body_freq_frac).ceil() as usize).max(2);
        for c in 0..nc {
            let mut counts: std::collections::HashMap<String, usize> =
                std::collections::HashMap::new();
            for cell in table.column(c) {
                let mut seen_in_cell = HashSet::new();
                for tok in tokenize(cell) {
                    if seen_in_cell.insert(tok.clone()) {
                        *counts.entry(tok).or_insert(0) += 1;
                    }
                }
            }
            for (tok, n) in counts {
                if n >= min_count {
                    body_frequent.insert(tok);
                }
            }
        }

        let column_values: Vec<Vec<String>> = (0..nc)
            .map(|c| {
                let mut vals: Vec<String> = table
                    .column(c)
                    .map(normalize_cell)
                    .filter(|v| !v.is_empty())
                    .collect();
                vals.sort_unstable();
                vals.dedup();
                vals
            })
            .collect();

        TableFeatures {
            header_tokens,
            header_vecs,
            column_header_vecs,
            title_set,
            context_set,
            body_frequent,
            column_values,
        }
    }
}

/// Owned-or-shared features behind a view (boxed either way, so the
/// view stays one pointer wide per arm).
enum Feats {
    Owned(Box<TableFeatures>),
    Shared(Arc<TableFeatures>),
}

/// Feature-ready view over one [`WebTable`].
pub struct TableView<'t> {
    /// The underlying table.
    pub table: &'t WebTable,
    feats: Feats,
}

impl Deref for TableView<'_> {
    type Target = TableFeatures;

    fn deref(&self) -> &TableFeatures {
        match &self.feats {
            Feats::Owned(f) => f,
            Feats::Shared(f) => f,
        }
    }
}

impl<'t> TableView<'t> {
    /// Builds the view, computing features on the spot.
    pub fn new(table: &'t WebTable, stats: &CorpusStats, body_freq_frac: f64) -> Self {
        TableView {
            table,
            feats: Feats::Owned(Box::new(TableFeatures::compute(
                table,
                stats,
                body_freq_frac,
            ))),
        }
    }

    /// A view over precomputed features ([`TableFeatures::compute`] run
    /// earlier for this exact table with the same statistics and
    /// configuration — the caller's contract).
    pub fn with_features(table: &'t WebTable, features: Arc<TableFeatures>) -> Self {
        TableView {
            table,
            feats: Feats::Shared(features),
        }
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.table.n_cols()
    }

    /// Number of header rows.
    pub fn n_header_rows(&self) -> usize {
        self.table.n_header_rows()
    }

    /// True iff token `w` appears in header row `r'` ≠ `r` of column `c`
    /// (part `Hc` of `outSim`).
    pub fn in_other_header_rows(&self, w: &str, r: usize, c: usize) -> bool {
        (0..self.n_header_rows())
            .filter(|&r2| r2 != r)
            .any(|r2| self.header_tokens[r2][c].iter().any(|t| t == w))
    }

    /// True iff token `w` appears in the header of another column `c'` ≠
    /// `c` in row `r` (part `Hr` of `outSim`).
    pub fn in_other_columns(&self, w: &str, r: usize, c: usize) -> bool {
        (0..self.n_cols())
            .filter(|&c2| c2 != c)
            .any(|c2| self.header_tokens[r][c2].iter().any(|t| t == w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_model::{ContextSnippet, TableId};

    fn bands_table() -> WebTable {
        WebTable::new(
            TableId(0),
            "u",
            None,
            vec![vec!["Band name".into(), "Country".into(), "Genre".into()]],
            vec![
                vec!["Mayhem".into(), "Norway".into(), "Black metal".into()],
                vec!["Burzum".into(), "Norway".into(), "Black metal".into()],
                vec!["Opeth".into(), "Sweden".into(), "Death metal".into()],
            ],
            vec![],
        )
        .unwrap()
    }

    fn view(t: &WebTable) -> TableView<'_> {
        // Leak-free: tests construct stats locally.
        TableView::new(t, &CorpusStats::new(), 0.3)
    }

    #[test]
    fn frequent_body_tokens_found() {
        let t = bands_table();
        let v = view(&t);
        // "metal" in 3/3 cells of column 2; "black" in 2/3; "norway" 2/3.
        assert!(v.body_frequent.contains("metal"));
        assert!(v.body_frequent.contains("black"));
        assert!(v.body_frequent.contains("norway"));
        // "mayhem" appears once — not frequent.
        assert!(!v.body_frequent.contains("mayhem"));
    }

    #[test]
    fn column_values_normalized() {
        let t = bands_table();
        let v = view(&t);
        assert!(v.column_values[2].iter().any(|s| s == "black metal"));
        assert_eq!(v.column_values[1].len(), 2); // norway, sweden
                                                 // Sorted + deduplicated: the contract the merge-count relies on.
        assert!(v.column_values[2].windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn header_tokens_and_vecs() {
        let t = bands_table();
        let v = view(&t);
        assert_eq!(v.header_tokens[0][0], vec!["band", "name"]);
        assert!(v.column_header_vecs[0].weight("band") > 0.0);
    }

    #[test]
    fn shared_features_behave_like_owned() {
        let t = bands_table();
        let stats = CorpusStats::new();
        let owned = TableView::new(&t, &stats, 0.3);
        let shared =
            TableView::with_features(&t, Arc::new(TableFeatures::compute(&t, &stats, 0.3)));
        assert_eq!(owned.header_tokens, shared.header_tokens);
        assert_eq!(owned.body_frequent, shared.body_frequent);
        assert_eq!(owned.column_values, shared.column_values);
        for (a, b) in owned
            .column_header_vecs
            .iter()
            .zip(&shared.column_header_vecs)
        {
            let (av, bv): (Vec<_>, Vec<_>) = (a.iter().collect(), b.iter().collect());
            assert_eq!(av, bv);
        }
        assert_eq!(owned.n_cols(), shared.n_cols());
    }

    #[test]
    fn part_membership_helpers() {
        let t = WebTable::new(
            TableId(1),
            "u",
            Some("Explorers of the world".into()),
            vec![
                vec!["Name".into(), "Main areas".into()],
                vec!["".into(), "explored".into()],
            ],
            vec![vec!["Tasman".into(), "Oceania".into()]; 2],
            vec![ContextSnippet::new("list of famous explorers", 0.9)],
        )
        .unwrap();
        let v = view(&t);
        assert!(v.title_set.contains("explorer"));
        assert!(v.context_set.contains("famous"));
        // "explored" is in header row 1 of column 1: visible from row 0.
        assert!(v.in_other_header_rows("explored", 0, 1));
        assert!(!v.in_other_header_rows("explored", 1, 1));
        // "name" is in column 0's row-0 header: visible from column 1.
        assert!(v.in_other_columns("name", 0, 1));
        assert!(!v.in_other_columns("name", 0, 0));
    }

    #[test]
    fn headerless_table_view() {
        let t = WebTable::new(
            TableId(2),
            "u",
            None,
            vec![],
            vec![vec!["a".into(), "b".into()]; 3],
            vec![],
        )
        .unwrap();
        let v = view(&t);
        assert_eq!(v.n_header_rows(), 0);
        assert!(v.column_header_vecs[0].is_empty());
    }
}
