//! The F1 error of the column mapping task (paper §5):
//!
//! ```text
//! error(y, y*) = 100 − 200·Σ [[y_tc = y*_tc ∧ y_tc ∈ 1..q]]
//!                      / (Σ [[y_tc ∈ 1..q]] + Σ [[y*_tc ∈ 1..q]])
//! ```
//!
//! i.e. 100·(1 − F1) over the query-column labels; `na`/`nr` decisions
//! count only indirectly (as missing or spurious query-column labels).

use wwt_model::Label;

/// Computes the F1 error (percent, 0 = perfect, 100 = nothing right) over
/// per-table `(predicted, reference)` label pairs.
///
/// Tables appearing in only one of the two labelings should be passed with
/// an all-`nr` counterpart.
pub fn f1_error<'a, I>(pairs: I) -> f64
where
    I: IntoIterator<Item = (&'a [Label], &'a [Label])>,
{
    let mut correct = 0usize;
    let mut predicted = 0usize;
    let mut reference = 0usize;
    for (pred, truth) in pairs {
        debug_assert_eq!(pred.len(), truth.len(), "label width mismatch");
        for (p, t) in pred.iter().zip(truth.iter()) {
            if p.is_query_col() {
                predicted += 1;
            }
            if t.is_query_col() {
                reference += 1;
            }
            if p.is_query_col() && p == t {
                correct += 1;
            }
        }
    }
    if predicted + reference == 0 {
        return 0.0; // nothing to find, nothing predicted: perfect
    }
    100.0 - 200.0 * correct as f64 / (predicted + reference) as f64
}

/// F1 error of a single table's labeling.
pub fn f1_error_single(pred: &[Label], truth: &[Label]) -> f64 {
    f1_error([(pred, truth)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use Label::*;

    #[test]
    fn perfect_prediction_zero_error() {
        let a = vec![Col(0), Col(1), Na];
        assert_eq!(f1_error_single(&a, &a), 0.0);
    }

    #[test]
    fn all_wrong_full_error() {
        let pred = vec![Col(1), Col(0)];
        let truth = vec![Col(0), Col(1)];
        assert_eq!(f1_error_single(&pred, &truth), 100.0);
    }

    #[test]
    fn missing_labels_penalized_as_recall() {
        // Truth maps 2 columns; prediction maps 1 of them correctly.
        let pred = vec![Col(0), Na];
        let truth = vec![Col(0), Col(1)];
        // F1 = 2·1/(1+2) = 2/3 → error 33.33.
        assert!((f1_error_single(&pred, &truth) - (100.0 - 200.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn spurious_labels_penalized_as_precision() {
        let pred = vec![Col(0), Col(1)];
        let truth = vec![Col(0), Na];
        assert!((f1_error_single(&pred, &truth) - (100.0 - 200.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn nr_vs_na_confusion_not_directly_counted() {
        let pred = vec![Nr, Nr];
        let truth = vec![Na, Na];
        // No query labels anywhere: vacuously perfect.
        assert_eq!(f1_error_single(&pred, &truth), 0.0);
    }

    #[test]
    fn irrelevant_table_marked_relevant_costs_precision() {
        let pred = vec![Col(0), Col(1)];
        let truth = vec![Nr, Nr];
        assert_eq!(f1_error_single(&pred, &truth), 100.0);
    }

    #[test]
    fn aggregates_over_tables() {
        let t1_pred = vec![Col(0)];
        let t1_truth = vec![Col(0)];
        let t2_pred = vec![Col(0)];
        let t2_truth = vec![Nr];
        let e = f1_error([
            (t1_pred.as_slice(), t1_truth.as_slice()),
            (t2_pred.as_slice(), t2_truth.as_slice()),
        ]);
        // correct 1, predicted 2, reference 1 → F1 = 2/3 → error 33.33.
        assert!((e - (100.0 - 200.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_input_is_perfect() {
        assert_eq!(f1_error(std::iter::empty::<(&[Label], &[Label])>()), 0.0);
    }
}
