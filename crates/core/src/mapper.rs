//! The top-level column mapper: feature extraction → graphical model →
//! inference → labeled tables with calibrated scores (paper §2.2.2, §3, §4).

use crate::colsim::{build_edges_pruned, PairMemo};
use crate::config::MapperConfig;
use crate::features::QueryView;
use crate::inference::{
    edge_centric, solve_table, table_centric, table_marginals, EdgeCentricAlgorithm,
};
use crate::potentials::{node_potentials, NodePotentials};
use crate::view::TableView;
use wwt_index::DocSets;
use wwt_model::{Label, Labeling, Query, WebTable, WwtError};
use wwt_text::CorpusStats;

/// Finite stand-in for `−∞` when the `early_exit` knob collapses a dead
/// column's query labels: low enough that no solver ever picks the label
/// (it drowns the `1e6` must-match bonus), finite so flow reductions and
/// marginal softmaxes never see `∞ − ∞`.
pub(crate) const COLLAPSE: f64 = -1.0e9;

/// Counters from one mapping run, for perf observability (surfaced through
/// diagnostics and the service stats endpoint; never wire-encoded in query
/// responses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MapStats {
    /// Column pairs whose exact similarity was computed during edge
    /// construction.
    pub edge_pairs_scored: u64,
    /// Column pairs skipped by the content-signature index (similarity
    /// provably zero).
    pub edge_pairs_skipped: u64,
    /// Column pairs replayed from the engine's cross-query pair memo.
    pub edge_pairs_memoized: u64,
    /// Tables whose relevant upper bound could not beat all-`nr` (the
    /// always-on exact solver early exit fires for these under
    /// independent inference).
    pub early_exit_tables: u64,
    /// Tables excluded from edge construction by the `early_exit` knob.
    pub pruned_tables: u64,
    /// Zero-similarity columns whose query labels the `early_exit` knob
    /// collapsed.
    pub collapsed_columns: u64,
}

impl MapStats {
    /// Accumulates another run's counters (for premap + final map totals).
    pub fn merge(&mut self, other: &MapStats) {
        self.edge_pairs_scored += other.edge_pairs_scored;
        self.edge_pairs_skipped += other.edge_pairs_skipped;
        self.edge_pairs_memoized += other.edge_pairs_memoized;
        self.early_exit_tables += other.early_exit_tables;
        self.pruned_tables += other.pruned_tables;
        self.collapsed_columns += other.collapsed_columns;
    }
}

/// Inference algorithm selection (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InferenceAlgorithm {
    /// No collective inference: each table labeled independently (§4.1).
    Independent,
    /// The table-centric collective algorithm (§4.2) — the paper's best
    /// and WWT's default.
    #[default]
    TableCentric,
    /// Constrained α-expansion (§4.3).
    AlphaExpansion,
    /// Loopy belief propagation baseline.
    BeliefPropagation,
    /// TRW-S baseline.
    Trws,
}

/// Output of the column mapper for one query.
#[derive(Debug, Clone)]
pub struct MappingResult {
    /// One labeling per candidate table, in input order.
    pub labelings: Vec<Labeling>,
    /// Calibrated per-column label distributions
    /// `probs[t][c][dense_label]`.
    pub column_probs: Vec<Vec<Vec<f64>>>,
    /// Per-table relevance probability (`1 − mean_c p(nr)`), used by the
    /// second index probe's top-2 selection (§2.2.1).
    pub table_relevance: Vec<f64>,
    /// Per-column confidence flags (gate of Eq. 4).
    pub confident: Vec<Vec<bool>>,
    /// Fast-path counters for this run.
    pub stats: MapStats,
}

impl MappingResult {
    /// A mapping over zero tables — the fail-soft substitute when the
    /// batch itself could not run (every table unlabeled, nothing
    /// relevant). Identical to mapping an empty candidate slice.
    pub fn empty() -> Self {
        MappingResult {
            labelings: Vec::new(),
            column_probs: Vec::new(),
            table_relevance: Vec::new(),
            confident: Vec::new(),
            stats: MapStats::default(),
        }
    }

    /// Tables labeled relevant, most relevant first.
    pub fn relevant_tables(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.labelings.len())
            .filter(|&t| self.labelings[t].is_relevant())
            .collect();
        idx.sort_by(|&a, &b| {
            self.table_relevance[b]
                .partial_cmp(&self.table_relevance[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx
    }
}

/// The column mapper (Figure 2's "Column Mapper" box).
#[derive(Debug, Clone, Default)]
pub struct ColumnMapper {
    /// Model configuration.
    pub config: MapperConfig,
    /// Inference algorithm to run.
    pub algorithm: InferenceAlgorithm,
    /// Optional cross-query memo of per-table-pair column matchings
    /// (see [`PairMemo`]); typically the owning engine's, shared by all
    /// of its queries. A memo fingerprinted for different similarity
    /// parameters is ignored.
    pub pair_memo: Option<std::sync::Arc<PairMemo>>,
}

impl ColumnMapper {
    /// A mapper with the given configuration and the default (table
    /// centric) algorithm.
    pub fn new(config: MapperConfig) -> Self {
        ColumnMapper {
            config,
            algorithm: InferenceAlgorithm::default(),
            pair_memo: None,
        }
    }

    /// Selects the inference algorithm.
    pub fn with_algorithm(mut self, algorithm: InferenceAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Maps every candidate table's columns to the query columns.
    ///
    /// `stats` supplies corpus IDF; `index` additionally enables the PMI²
    /// feature when `config.use_pmi` is set. Any [`DocSets`]
    /// implementation works — a plain [`wwt_index::TableIndex`] or a
    /// [`wwt_index::ShardedIndex`] answer identically.
    pub fn map(
        &self,
        query: &Query,
        tables: &[&WebTable],
        stats: &CorpusStats,
        index: Option<&dyn DocSets>,
    ) -> MappingResult {
        let views: Vec<TableView<'_>> = tables
            .iter()
            .map(|t| TableView::new(t, stats, self.config.body_freq_frac))
            .collect();
        self.map_views(query, &views, stats, index)
    }

    /// [`ColumnMapper::map`] over already-built views — the entry point
    /// for callers holding **precomputed** per-table features (the engine
    /// computes them once at bind time). Views must have been built with
    /// the same statistics and `body_freq_frac` this mapper runs with;
    /// the output is then byte-identical to [`ColumnMapper::map`] on the
    /// same tables.
    pub fn map_views(
        &self,
        query: &Query,
        views: &[TableView<'_>],
        stats: &CorpusStats,
        index: Option<&dyn DocSets>,
    ) -> MappingResult {
        self.map_views_with_threads(query, views, stats, index, 1)
    }

    /// [`ColumnMapper::map_views`] with the per-table node-potential
    /// batch fanned out over the persistent worker pool. Each candidate's
    /// potentials depend only on its own view (and the shared read-only
    /// query view / doc-set index), and the fan-out returns results in
    /// input order, so the output is **identical** to the serial form for
    /// every thread count — `threads <= 1` short-circuits to it.
    pub fn map_views_with_threads(
        &self,
        query: &Query,
        views: &[TableView<'_>],
        stats: &CorpusStats,
        index: Option<&dyn DocSets>,
        threads: usize,
    ) -> MappingResult {
        self.map_views_inner(query, views, stats, index, threads, false, None)
            .expect("infallible without a cancel hook")
            .0
    }

    /// [`ColumnMapper::map_views_with_threads`], additionally returning
    /// each view's node-potential wall-clock duration (input order, one
    /// per view) so tracing callers can attach per-batch child spans.
    /// The mapping result is identical to the untimed form — the timing
    /// wrapper observes the same computation.
    pub fn map_views_with_threads_timed(
        &self,
        query: &Query,
        views: &[TableView<'_>],
        stats: &CorpusStats,
        index: Option<&dyn DocSets>,
        threads: usize,
    ) -> (MappingResult, Vec<std::time::Duration>) {
        self.map_views_inner(query, views, stats, index, threads, true, None)
            .expect("infallible without a cancel hook")
    }

    /// [`ColumnMapper::map_views_with_threads`] with an in-stage
    /// cancellation hook (typically a deadline check), consulted once per
    /// view inside the node-potential batch and once per table during
    /// edge construction. A hook that never fires is the identity: the
    /// result is byte-identical to the uncancellable form.
    pub fn map_views_cancellable(
        &self,
        query: &Query,
        views: &[TableView<'_>],
        stats: &CorpusStats,
        index: Option<&dyn DocSets>,
        threads: usize,
        cancel: Option<&(dyn Fn() -> Result<(), WwtError> + Sync)>,
    ) -> Result<MappingResult, WwtError> {
        Ok(self
            .map_views_inner(query, views, stats, index, threads, false, cancel)?
            .0)
    }

    /// [`ColumnMapper::map_views_cancellable`] with per-view timings.
    pub fn map_views_cancellable_timed(
        &self,
        query: &Query,
        views: &[TableView<'_>],
        stats: &CorpusStats,
        index: Option<&dyn DocSets>,
        threads: usize,
        cancel: Option<&(dyn Fn() -> Result<(), WwtError> + Sync)>,
    ) -> Result<(MappingResult, Vec<std::time::Duration>), WwtError> {
        self.map_views_inner(query, views, stats, index, threads, true, cancel)
    }

    #[allow(clippy::too_many_arguments)]
    fn map_views_inner(
        &self,
        query: &Query,
        views: &[TableView<'_>],
        stats: &CorpusStats,
        index: Option<&dyn DocSets>,
        threads: usize,
        timed: bool,
        cancel: Option<&(dyn Fn() -> Result<(), WwtError> + Sync)>,
    ) -> Result<(MappingResult, Vec<std::time::Duration>), WwtError> {
        let cfg = &self.config;
        let qv = QueryView::new(query, stats);
        let q = qv.q();
        let (mut pots, view_times): (Vec<NodePotentials>, Vec<std::time::Duration>) =
            if threads <= 1 || views.len() <= 1 {
                let mut pots = Vec::with_capacity(views.len());
                let mut times = Vec::new();
                for v in views {
                    if let Some(check) = cancel {
                        check()?;
                    }
                    if timed {
                        let t0 = std::time::Instant::now();
                        pots.push(node_potentials(&qv, v, cfg, index));
                        times.push(t0.elapsed());
                    } else {
                        pots.push(node_potentials(&qv, v, cfg, index));
                    }
                }
                (pots, times)
            } else if timed {
                let (res, times) = wwt_pool::fan_out_timed(views.len(), threads, |i| {
                    if let Some(check) = cancel {
                        check()?;
                    }
                    Ok::<_, WwtError>(node_potentials(&qv, &views[i], cfg, index))
                });
                (res.into_iter().collect::<Result<_, _>>()?, times)
            } else {
                let res = wwt_pool::fan_out(views.len(), threads, |i| {
                    if let Some(check) = cancel {
                        check()?;
                    }
                    Ok::<_, WwtError>(node_potentials(&qv, &views[i], cfg, index))
                });
                (res.into_iter().collect::<Result<_, _>>()?, Vec::new())
            };
        let m_eff: Vec<usize> = views
            .iter()
            .map(|v| cfg.effective_min_match(q, v.n_cols()))
            .collect();

        let mut map_stats = MapStats {
            early_exit_tables: pots
                .iter()
                .filter(|p| p.relevant_upper_bound() <= p.all_nr_score())
                .count() as u64,
            ..MapStats::default()
        };

        // The `early_exit` knob: collapse dead columns' query labels and
        // drop hopeless tables from edge construction. Collapsing a row
        // that is exactly the bias `w5` on every query label (zero
        // similarity everywhere) leaves the relevant upper bound intact
        // (both `w5 < 0` and `COLLAPSE` fold to the same `0.0`), so the
        // prune decision is unaffected by collapse order.
        let mut keep = vec![true; views.len()];
        if cfg.early_exit {
            for (t, p) in pots.iter_mut().enumerate() {
                for c in 0..p.n_cols() {
                    if p.theta[c][..q].iter().all(|&v| v == cfg.weights.w5) {
                        for l in 0..q {
                            p.theta[c][l] = COLLAPSE;
                        }
                        map_stats.collapsed_columns += 1;
                    }
                }
                if p.relevant_upper_bound() <= p.all_nr_score() {
                    keep[t] = false;
                    map_stats.pruned_tables += 1;
                }
            }
        }

        let needs_edges = !matches!(self.algorithm, InferenceAlgorithm::Independent);
        let edges = if needs_edges {
            let mask = cfg.early_exit.then_some(keep.as_slice());
            let (edges, estats) =
                build_edges_pruned(views, cfg, mask, cancel, self.pair_memo.as_deref())?;
            map_stats.edge_pairs_scored = estats.pairs_scored;
            map_stats.edge_pairs_skipped = estats.pairs_skipped;
            map_stats.edge_pairs_memoized = estats.pairs_memoized;
            edges
        } else {
            Vec::new()
        };

        let (labels, marginals) = match self.algorithm {
            InferenceAlgorithm::Independent => {
                let labels: Vec<Vec<Label>> = pots
                    .iter()
                    .zip(&m_eff)
                    .map(|(p, &m)| solve_table(p, m).0)
                    .collect();
                let marginals = pots.iter().map(|p| table_marginals(p, cfg)).collect();
                (labels, marginals)
            }
            InferenceAlgorithm::TableCentric => {
                let r = table_centric(&pots, &edges, &m_eff, cfg);
                (r.labels, r.marginals)
            }
            InferenceAlgorithm::AlphaExpansion => {
                let r = edge_centric(
                    &pots,
                    &edges,
                    &m_eff,
                    cfg,
                    EdgeCentricAlgorithm::AlphaExpansion,
                );
                (r.labels, r.marginals)
            }
            InferenceAlgorithm::BeliefPropagation => {
                let r = edge_centric(
                    &pots,
                    &edges,
                    &m_eff,
                    cfg,
                    EdgeCentricAlgorithm::BeliefPropagation,
                );
                (r.labels, r.marginals)
            }
            InferenceAlgorithm::Trws => {
                let r = edge_centric(&pots, &edges, &m_eff, cfg, EdgeCentricAlgorithm::Trws);
                (r.labels, r.marginals)
            }
        };

        let result = MappingResult {
            labelings: views
                .iter()
                .zip(&labels)
                .map(|(v, l)| Labeling::new(v.table.id, l.clone()))
                .collect(),
            column_probs: marginals.iter().map(|m| m.probs.clone()).collect(),
            table_relevance: marginals.iter().map(|m| m.relevance_prob).collect(),
            confident: marginals.iter().map(|m| m.confident.clone()).collect(),
            stats: map_stats,
        };
        Ok((result, view_times))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_model::{ContextSnippet, TableId};

    fn currency_table(id: u32) -> WebTable {
        WebTable::new(
            TableId(id),
            "u",
            None,
            vec![vec!["Country".into(), "Currency".into()]],
            vec![
                vec!["India".into(), "Rupee".into()],
                vec!["Japan".into(), "Yen".into()],
                vec!["France".into(), "Euro".into()],
            ],
            vec![ContextSnippet::new(
                "currencies of the world by country",
                0.9,
            )],
        )
        .unwrap()
    }

    fn forest_table(id: u32) -> WebTable {
        WebTable::new(
            TableId(id),
            "u",
            Some("Forest reserves".into()),
            vec![vec!["ID".into(), "Name".into(), "Area".into()]],
            vec![
                vec!["7".into(), "Shakespeare Hills".into(), "2236".into()],
                vec!["9".into(), "Plains Creek".into(), "880".into()],
            ],
            vec![ContextSnippet::new(
                "areas available for mineral exploration and mining",
                0.8,
            )],
        )
        .unwrap()
    }

    fn headerless_currency(id: u32) -> WebTable {
        WebTable::new(
            TableId(id),
            "u",
            None,
            vec![],
            vec![
                vec!["India".into(), "Rupee".into()],
                vec!["Japan".into(), "Yen".into()],
                vec!["France".into(), "Euro".into()],
            ],
            vec![],
        )
        .unwrap()
    }

    fn all_algorithms() -> [InferenceAlgorithm; 5] {
        [
            InferenceAlgorithm::Independent,
            InferenceAlgorithm::TableCentric,
            InferenceAlgorithm::AlphaExpansion,
            InferenceAlgorithm::BeliefPropagation,
            InferenceAlgorithm::Trws,
        ]
    }

    #[test]
    fn relevant_and_irrelevant_separated_by_every_algorithm() {
        let q = Query::parse("country | currency").unwrap();
        let good = currency_table(0);
        let bad = forest_table(1);
        let stats = CorpusStats::new();
        for alg in all_algorithms() {
            let mapper = ColumnMapper::default().with_algorithm(alg);
            let r = mapper.map(&q, &[&good, &bad], &stats, None);
            assert_eq!(
                r.labelings[0].labels,
                vec![Label::Col(0), Label::Col(1)],
                "{alg:?} good table"
            );
            assert_eq!(
                r.labelings[1].labels,
                vec![Label::Nr; 3],
                "{alg:?} bad table"
            );
            assert!(r.table_relevance[0] > r.table_relevance[1], "{alg:?}");
        }
    }

    #[test]
    fn collective_inference_rescues_headerless_table() {
        let q = Query::parse("country | currency").unwrap();
        let good = currency_table(0);
        let naked = headerless_currency(1);
        let stats = CorpusStats::new();

        // Independent: headerless table cannot be mapped.
        let independent = ColumnMapper::default()
            .with_algorithm(InferenceAlgorithm::Independent)
            .map(&q, &[&good, &naked], &stats, None);
        assert!(!independent.labelings[1].is_relevant());

        // Table-centric: content overlap transfers the labels.
        let collective = ColumnMapper::default()
            .with_algorithm(InferenceAlgorithm::TableCentric)
            .map(&q, &[&good, &naked], &stats, None);
        assert_eq!(
            collective.labelings[1].labels,
            vec![Label::Col(0), Label::Col(1)],
            "headerless table not rescued"
        );
    }

    #[test]
    fn swapped_column_order_mapped_correctly() {
        // Like Figure 1's Table 2: columns in reverse query order.
        let q = Query::parse("country | currency").unwrap();
        let swapped = WebTable::new(
            TableId(0),
            "u",
            None,
            vec![vec!["Currency".into(), "Country name".into()]],
            vec![vec!["Rupee".into(), "India".into()]],
            vec![],
        )
        .unwrap();
        let stats = CorpusStats::new();
        let r = ColumnMapper::default().map(&q, &[&swapped], &stats, None);
        assert_eq!(r.labelings[0].labels, vec![Label::Col(1), Label::Col(0)]);
    }

    #[test]
    fn relevant_tables_sorted_by_relevance() {
        let q = Query::parse("country | currency").unwrap();
        let good = currency_table(0);
        let naked = headerless_currency(1);
        let stats = CorpusStats::new();
        let r = ColumnMapper::default().map(&q, &[&naked, &good], &stats, None);
        let rel = r.relevant_tables();
        assert!(!rel.is_empty());
        assert_eq!(rel[0], 1, "strongest table first: {rel:?}");
    }

    #[test]
    fn empty_candidate_set() {
        let q = Query::parse("country | currency").unwrap();
        let stats = CorpusStats::new();
        let r = ColumnMapper::default().map(&q, &[], &stats, None);
        assert!(r.labelings.is_empty());
        assert!(r.relevant_tables().is_empty());
    }

    #[test]
    fn pooled_mapping_is_identical_to_serial() {
        let q = Query::parse("country | currency").unwrap();
        let tables = [
            currency_table(0),
            forest_table(1),
            headerless_currency(2),
            currency_table(3),
        ];
        let refs: Vec<&WebTable> = tables.iter().collect();
        let stats = CorpusStats::new();
        for alg in all_algorithms() {
            let mapper = ColumnMapper::default().with_algorithm(alg);
            let views: Vec<crate::view::TableView<'_>> = refs
                .iter()
                .map(|t| crate::view::TableView::new(t, &stats, mapper.config.body_freq_frac))
                .collect();
            let serial = mapper.map_views(&q, &views, &stats, None);
            for threads in [2usize, 4, 8] {
                let pooled = mapper.map_views_with_threads(&q, &views, &stats, None, threads);
                assert_eq!(serial.labelings, pooled.labelings, "{alg:?} t={threads}");
                for (a, b) in serial.table_relevance.iter().zip(&pooled.table_relevance) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{alg:?} t={threads}");
                }
                assert_eq!(serial.confident, pooled.confident, "{alg:?} t={threads}");
            }
        }
    }

    #[test]
    fn timed_mapping_is_identical_and_times_every_view() {
        let q = Query::parse("country | currency").unwrap();
        let tables = [currency_table(0), forest_table(1), currency_table(2)];
        let refs: Vec<&WebTable> = tables.iter().collect();
        let stats = CorpusStats::new();
        let mapper = ColumnMapper::default();
        let views: Vec<crate::view::TableView<'_>> = refs
            .iter()
            .map(|t| crate::view::TableView::new(t, &stats, mapper.config.body_freq_frac))
            .collect();
        let plain = mapper.map_views(&q, &views, &stats, None);
        for threads in [1usize, 4] {
            let (timed, times) =
                mapper.map_views_with_threads_timed(&q, &views, &stats, None, threads);
            assert_eq!(plain.labelings, timed.labelings, "t={threads}");
            assert_eq!(times.len(), views.len(), "t={threads}");
            for (a, b) in plain.table_relevance.iter().zip(&timed.table_relevance) {
                assert_eq!(a.to_bits(), b.to_bits(), "t={threads}");
            }
        }
    }

    #[test]
    fn collapsed_label_space_reproduces_dense_solve() {
        // The knob's collapse must be invisible whenever the dense solve
        // would not map the dead column anyway: a row that is exactly
        // `w5` on every query label scores worse than `na` (θ = 0), so
        // the optimum never uses it and forcing it to COLLAPSE changes
        // neither labels nor score bits.
        let cfg = MapperConfig::default();
        let w5 = cfg.weights.w5;
        let theta = vec![
            vec![1.0, -0.3, 0.0, 0.1],
            vec![w5, w5, 0.0, 0.05], // dead column: zero similarity
            vec![-0.3, 1.0, 0.0, 0.1],
        ];
        let dense = NodePotentials {
            q: 2,
            theta: theta.clone(),
            relevance: 0.5,
        };
        let mut collapsed_theta = theta;
        for l in 0..2 {
            collapsed_theta[1][l] = COLLAPSE;
        }
        let collapsed = NodePotentials {
            q: 2,
            theta: collapsed_theta,
            relevance: 0.5,
        };
        for m_eff in 1..=2 {
            let a = solve_table(&dense, m_eff);
            let b = solve_table(&collapsed, m_eff);
            assert_eq!(a.0, b.0, "m={m_eff}");
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "m={m_eff}");
        }
    }

    #[test]
    fn early_exit_knob_preserves_labelings_on_separable_corpus() {
        // The currency table maps; the forest table shares nothing with
        // the query (all-dead columns, prunable). The knob must not
        // disturb the labelings of either under any algorithm.
        let q = Query::parse("country | currency").unwrap();
        let good = currency_table(0);
        let bad = forest_table(1);
        let stats = CorpusStats::new();
        for alg in all_algorithms() {
            let off = ColumnMapper::default().with_algorithm(alg);
            let on = ColumnMapper::new(MapperConfig {
                early_exit: true,
                ..MapperConfig::default()
            })
            .with_algorithm(alg);
            let r_off = off.map(&q, &[&good, &bad], &stats, None);
            let r_on = on.map(&q, &[&good, &bad], &stats, None);
            assert_eq!(r_off.labelings, r_on.labelings, "{alg:?}");
            assert_eq!(r_off.stats.pruned_tables, 0, "{alg:?}");
            assert!(r_on.stats.pruned_tables >= 1, "{alg:?} {:?}", r_on.stats);
            assert!(
                r_on.stats.collapsed_columns >= 3,
                "{alg:?} {:?}",
                r_on.stats
            );
            assert!(r_on.table_relevance[0] > r_on.table_relevance[1], "{alg:?}");
        }
    }

    #[test]
    fn cancellation_propagates_from_potentials_batch() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let q = Query::parse("country | currency").unwrap();
        let tables = [currency_table(0), forest_table(1), currency_table(2)];
        let refs: Vec<&WebTable> = tables.iter().collect();
        let stats = CorpusStats::new();
        let mapper = ColumnMapper::default();
        let views: Vec<crate::view::TableView<'_>> = refs
            .iter()
            .map(|t| crate::view::TableView::new(t, &stats, mapper.config.body_freq_frac))
            .collect();
        let calls = AtomicUsize::new(0);
        let cancel = || {
            if calls.fetch_add(1, Ordering::SeqCst) >= 1 {
                Err(WwtError::DeadlineExceeded("column mapping".into()))
            } else {
                Ok(())
            }
        };
        for threads in [1usize, 4] {
            calls.store(0, Ordering::SeqCst);
            let r = mapper.map_views_cancellable(&q, &views, &stats, None, threads, Some(&cancel));
            assert!(
                matches!(r, Err(WwtError::DeadlineExceeded(_))),
                "t={threads}"
            );
        }
        // A hook that never fires is the identity.
        let ok = mapper
            .map_views_cancellable(&q, &views, &stats, None, 1, Some(&|| Ok(())))
            .unwrap();
        let plain = mapper.map_views(&q, &views, &stats, None);
        assert_eq!(ok.labelings, plain.labelings);
        for (a, b) in ok.table_relevance.iter().zip(&plain.table_relevance) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn probabilities_well_formed() {
        let q = Query::parse("country | currency").unwrap();
        let good = currency_table(0);
        let stats = CorpusStats::new();
        let r = ColumnMapper::default().map(&q, &[&good], &stats, None);
        for col in &r.column_probs[0] {
            assert_eq!(col.len(), 4); // q + 2
            let z: f64 = col.iter().sum();
            assert!((z - 1.0).abs() < 1e-9);
        }
        assert!(r.table_relevance[0] > 0.5);
    }
}
