//! Parameter training by exhaustive enumeration (paper §3.4: "Since we had
//! only six parameters, we were able to find the best values through
//! exhaustive enumeration" — max-margin methods need exact inference,
//! which Eq. 9 does not admit).
//!
//! [`grid_search`] evaluates a caller-supplied error function (typically
//! the F1 error of the mapper over a labeled development workload) on the
//! cross product of per-parameter candidate grids and returns the best
//! [`Weights`].

use crate::config::Weights;

/// Candidate values for each of the six parameters.
#[derive(Debug, Clone)]
pub struct Grid {
    /// Candidates for `w1` (SegSim).
    pub w1: Vec<f64>,
    /// Candidates for `w2` (Cover).
    pub w2: Vec<f64>,
    /// Candidates for `w3` (PMI²).
    pub w3: Vec<f64>,
    /// Candidates for `w4` (nr potential).
    pub w4: Vec<f64>,
    /// Candidates for `w5` (bias; should be ≤ 0).
    pub w5: Vec<f64>,
    /// Candidates for `we` (edge weight).
    pub we: Vec<f64>,
}

impl Default for Grid {
    /// A coarse default grid (1,536 combinations) centered on the shipped
    /// weights.
    fn default() -> Self {
        Grid {
            w1: vec![0.5, 1.0, 1.5, 2.0],
            w2: vec![0.2, 0.6, 1.0, 1.4],
            w3: vec![0.0, 0.4],
            w4: vec![0.5, 0.9, 1.3, 1.7],
            w5: vec![-0.2, -0.35, -0.5, -0.8],
            we: vec![0.4, 0.8, 1.2],
        }
    }
}

impl Grid {
    /// Number of weight combinations the grid spans.
    pub fn size(&self) -> usize {
        self.w1.len()
            * self.w2.len()
            * self.w3.len()
            * self.w4.len()
            * self.w5.len()
            * self.we.len()
    }
}

/// Result of a grid search.
#[derive(Debug, Clone)]
pub struct TrainedWeights {
    /// The best weights found.
    pub weights: Weights,
    /// The error they achieved.
    pub error: f64,
    /// Combinations evaluated.
    pub evaluated: usize,
}

/// Exhaustively searches `grid`, evaluating `error_of` on every weight
/// combination, and returns the argmin (ties broken by first encounter,
/// which prefers earlier = smaller grid values deterministically).
pub fn grid_search<F>(grid: &Grid, mut error_of: F) -> TrainedWeights
where
    F: FnMut(&Weights) -> f64,
{
    let mut best: Option<(Weights, f64)> = None;
    let mut evaluated = 0usize;
    for &w1 in &grid.w1 {
        for &w2 in &grid.w2 {
            for &w3 in &grid.w3 {
                for &w4 in &grid.w4 {
                    for &w5 in &grid.w5 {
                        for &we in &grid.we {
                            let w = Weights {
                                w1,
                                w2,
                                w3,
                                w4,
                                w5,
                                we,
                            };
                            let err = error_of(&w);
                            evaluated += 1;
                            if best.as_ref().map(|(_, e)| err < *e).unwrap_or(true) {
                                best = Some((w, err));
                            }
                        }
                    }
                }
            }
        }
    }
    let (weights, error) = best.expect("grid must be non-empty");
    TrainedWeights {
        weights,
        error,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_known_optimum() {
        // Error = distance to a planted optimum.
        let target = Weights {
            w1: 1.5,
            w2: 1.0,
            w3: 0.0,
            w4: 0.9,
            w5: -0.5,
            we: 1.2,
        };
        let grid = Grid::default();
        let r = grid_search(&grid, |w| {
            (w.w1 - target.w1).abs()
                + (w.w2 - target.w2).abs()
                + (w.w3 - target.w3).abs()
                + (w.w4 - target.w4).abs()
                + (w.w5 - target.w5).abs()
                + (w.we - target.we).abs()
        });
        assert_eq!(r.weights, target);
        assert_eq!(r.error, 0.0);
        assert_eq!(r.evaluated, grid.size());
    }

    #[test]
    fn grid_size_matches_enumeration() {
        let g = Grid::default();
        assert_eq!(g.size(), 4 * 4 * 2 * 4 * 4 * 3);
    }

    #[test]
    fn single_point_grid() {
        let g = Grid {
            w1: vec![1.0],
            w2: vec![1.0],
            w3: vec![0.0],
            w4: vec![1.0],
            w5: vec![-0.3],
            we: vec![0.5],
        };
        let r = grid_search(&g, |_| 42.0);
        assert_eq!(r.evaluated, 1);
        assert_eq!(r.error, 42.0);
    }
}
