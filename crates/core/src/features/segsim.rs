//! The segmented similarity `SegSim` (Eq. 1) and `Cover` (§3.2.2).
//!
//! `Q_ℓ` is split into a prefix and a suffix; one part is pinned to a
//! header row of the candidate column (`inSim`), the other gathers support
//! from the rest of the table (`outSim`): title `T`, context `C`, other
//! header rows of the column `Hc`, headers of other columns in the matched
//! row `Hr`, and frequent body tokens `B`, with reliabilities
//! `(1.0, 0.9, 0.5, 1.0, 0.8)`.
//!
//! The score of a token matching several parts is the soft-max
//! `1 − Π (1 − p_i)` — each additional match helps, with exponentially
//! decaying influence.

use crate::config::{MapperConfig, PartReliability, SimilarityMode};
use crate::features::QueryColumn;
use crate::view::{InternedFeatures, TableView};
use wwt_text::TfIdfVector;

/// Which `inSim` the segmentation uses.
#[derive(Clone, Copy, PartialEq, Eq)]
enum InSimKind {
    /// TF-IDF cosine (SegSim).
    Cosine,
    /// TF-IDF-weighted covered fraction (Cover).
    Coverage,
}

/// `SegSim(Q_ℓ, tc)` — Eq. 1. Zero for headerless tables (the paper relies
/// on content-overlap edges to rescue those).
pub fn seg_sim(q: &QueryColumn, view: &TableView<'_>, c: usize, cfg: &MapperConfig) -> f64 {
    match cfg.similarity {
        SimilarityMode::Segmented => segmented(q, view, c, &cfg.reliability, InSimKind::Cosine),
        SimilarityMode::Unsegmented => q.vec.cosine(&view.column_header_vecs[c]),
    }
}

/// `Cover(Q_ℓ, tc)` — §3.2.2: same segmentation, `inSim` replaced by the
/// weighted fraction of the in-part's tokens appearing in the header.
pub fn cover(q: &QueryColumn, view: &TableView<'_>, c: usize, cfg: &MapperConfig) -> f64 {
    match cfg.similarity {
        SimilarityMode::Segmented => segmented(q, view, c, &cfg.reliability, InSimKind::Coverage),
        SimilarityMode::Unsegmented => q.vec.covered_fraction(&view.column_header_vecs[c]),
    }
}

fn segmented(
    q: &QueryColumn,
    view: &TableView<'_>,
    c: usize,
    rel: &PartReliability,
    kind: InSimKind,
) -> f64 {
    let m = q.tokens.len();
    if m == 0 || q.norm_sq == 0.0 || view.n_header_rows() == 0 {
        return 0.0;
    }
    let mut best: f64 = 0.0;
    for r in 0..view.n_header_rows() {
        // Out-part token scores are per (r, c); precompute per token.
        let out_score: Vec<f64> = q
            .tokens
            .iter()
            .zip(&q.ti)
            .map(|(w, &ti)| ti * ti * soft_max_reliability(w, view, r, c, rel))
            .collect();
        let header_vec = &view.header_vecs[r][c];
        if header_vec.is_empty() {
            continue;
        }
        for k in 0..=m {
            // Orientation A: prefix -> header, suffix -> rest.
            if k >= 1 {
                if let Some(score) = score_split(q, header_vec, 0..k, k..m, &out_score, kind) {
                    best = best.max(score);
                }
            }
            // Orientation B: suffix -> header, prefix -> rest.
            if k < m {
                if let Some(score) = score_split(q, header_vec, k..m, 0..k, &out_score, kind) {
                    best = best.max(score);
                }
            }
        }
    }
    best
}

/// Scores one (in-part, out-part) split against one header row, or `None`
/// when the in-part has no overlap with the header (Eq. 1's constraint
/// `P ∩ H_rc ≠ ∅`).
fn score_split(
    q: &QueryColumn,
    header_vec: &TfIdfVector,
    in_range: std::ops::Range<usize>,
    out_range: std::ops::Range<usize>,
    out_score: &[f64],
    kind: InSimKind,
) -> Option<f64> {
    let in_tokens = &q.tokens[in_range.clone()];
    if !in_tokens.iter().any(|w| header_vec.weight(w) != 0.0) {
        return None;
    }
    let in_norm_sq: f64 = q.ti[in_range.clone()].iter().map(|w| w * w).sum();
    if in_norm_sq == 0.0 {
        return None;
    }
    let in_sim = match kind {
        InSimKind::Cosine => {
            // Cosine between the in-part tokens and the header.
            let mut dot = 0.0;
            for (w, &ti) in in_tokens.iter().zip(&q.ti[in_range]) {
                dot += ti * header_vec.weight(w);
            }
            dot / (in_norm_sq.sqrt() * header_vec.norm())
        }
        InSimKind::Coverage => {
            let covered: f64 = in_tokens
                .iter()
                .zip(&q.ti[in_range])
                .filter(|(w, _)| header_vec.weight(w) != 0.0)
                .map(|(_, &ti)| ti * ti)
                .sum();
            covered / in_norm_sq
        }
    };
    let out_total: f64 = out_range.map(|i| out_score[i]).sum();
    // Eq. 1 with ‖S‖² cancelled into the out-part sum.
    Some((in_norm_sq * in_sim.clamp(0.0, 1.0) + out_total) / q.norm_sq)
}

/// A query column resolved against one table's interned vocabulary: per
/// token, the local term id (if the table contains the token at all) plus
/// the table-level (r,c)-independent prefix of the `outSim` soft-max.
///
/// `soft_max_reliability` multiplies its five miss factors in the fixed
/// order title, context, `Hc`, `Hr`, body. The first two depend only on
/// the (token, table) pair, so their left-to-right prefix product
/// `((1·a)·b)` is hoisted here — the remaining factors are applied per
/// `(r, c)` in the same order, reproducing the string path's rounding
/// exactly.
pub(crate) struct BoundQueryColumn {
    /// Local term id per token position (`None` = token absent from the
    /// table: every membership probe is false).
    ids: Vec<Option<u32>>,
    /// Hoisted title·context miss-product per token position.
    tc_miss: Vec<f64>,
    /// Frequent-body membership per token position.
    in_body: Vec<bool>,
}

/// Resolves `q`'s tokens against `f` once per (query column, table).
pub(crate) fn bind_query_column(
    q: &QueryColumn,
    f: &InternedFeatures,
    rel: &PartReliability,
) -> BoundQueryColumn {
    let mut ids = Vec::with_capacity(q.tokens.len());
    let mut tc_miss = Vec::with_capacity(q.tokens.len());
    let mut in_body = Vec::with_capacity(q.tokens.len());
    for tok in &q.tokens {
        let id = f.resolve(tok);
        let mut miss = 1.0f64;
        let mut body = false;
        if let Some(id) = id {
            if f.in_title(id) {
                miss *= 1.0 - rel.title;
            }
            if f.in_context(id) {
                miss *= 1.0 - rel.context;
            }
            body = f.in_body(id);
        }
        ids.push(id);
        tc_miss.push(miss);
        in_body.push(body);
    }
    BoundQueryColumn {
        ids,
        tc_miss,
        in_body,
    }
}

/// `SegSim` and `Cover` of one (query column, table column) pair in a
/// single fused pass over the interned features — bit-identical to
/// calling [`seg_sim`] and [`cover`] on the string path.
///
/// Fusing is exact because every quantity the two scores share —
/// out-part token scores, split enumeration and skip conditions, in-part
/// norm, out-part sums — is kind-independent; only the in-similarity
/// differs, and each kind's candidate-score sequence (and therefore its
/// left-to-right `max` fold) is unchanged from the dedicated functions.
pub(crate) fn seg_and_cover_interned(
    q: &QueryColumn,
    b: &BoundQueryColumn,
    view: &TableView<'_>,
    f: &InternedFeatures,
    c: usize,
    rel: &PartReliability,
) -> (f64, f64) {
    let m = q.tokens.len();
    if m == 0 || q.norm_sq == 0.0 || view.n_header_rows() == 0 {
        return (0.0, 0.0);
    }
    let mut best_cos: f64 = 0.0;
    let mut best_cov: f64 = 0.0;
    let mut out_score = vec![0.0f64; m];
    for r in 0..view.n_header_rows() {
        let cell = f.cell(r, c);
        if cell.is_empty() {
            continue;
        }
        for i in 0..m {
            out_score[i] = match b.ids[i] {
                // Absent token: the string path computes
                // `ti·ti·(1 − 1.0)` = +0.0 exactly (ti ≥ 0).
                None => 0.0,
                Some(id) => {
                    let mut miss = b.tc_miss[i];
                    if f.in_other_header_rows(id, r, c) {
                        miss *= 1.0 - rel.other_header_rows;
                    }
                    if f.in_other_columns(id, r, c) {
                        miss *= 1.0 - rel.other_columns;
                    }
                    if b.in_body[i] {
                        miss *= 1.0 - rel.body;
                    }
                    q.ti[i] * q.ti[i] * (1.0 - miss)
                }
            };
        }
        let mut split = |in_range: std::ops::Range<usize>, out_range: std::ops::Range<usize>| {
            let wt = |i: usize| -> f64 {
                match b.ids[i] {
                    Some(id) => cell.weight(id),
                    None => 0.0,
                }
            };
            if !in_range.clone().any(|i| wt(i) != 0.0) {
                return;
            }
            let in_norm_sq: f64 = q.ti[in_range.clone()].iter().map(|w| w * w).sum();
            if in_norm_sq == 0.0 {
                return;
            }
            let mut dot = 0.0;
            for i in in_range.clone() {
                dot += q.ti[i] * wt(i);
            }
            let in_cos = dot / (in_norm_sq.sqrt() * cell.norm());
            let covered: f64 = in_range
                .clone()
                .filter(|&i| wt(i) != 0.0)
                .map(|i| q.ti[i] * q.ti[i])
                .sum();
            let in_cov = covered / in_norm_sq;
            let out_total: f64 = out_range.map(|i| out_score[i]).sum();
            best_cos = best_cos.max((in_norm_sq * in_cos.clamp(0.0, 1.0) + out_total) / q.norm_sq);
            best_cov = best_cov.max((in_norm_sq * in_cov.clamp(0.0, 1.0) + out_total) / q.norm_sq);
        };
        for k in 0..=m {
            if k >= 1 {
                split(0..k, k..m);
            }
            if k < m {
                split(k..m, 0..k);
            }
        }
    }
    (best_cos, best_cov)
}

/// `1 − Π_{i: w ∈ part(i)} (1 − p_i)` over the five out-of-header parts.
fn soft_max_reliability(
    w: &str,
    view: &TableView<'_>,
    r: usize,
    c: usize,
    rel: &PartReliability,
) -> f64 {
    let mut miss = 1.0;
    if view.title_set.contains(w) {
        miss *= 1.0 - rel.title;
    }
    if view.context_set.contains(w) {
        miss *= 1.0 - rel.context;
    }
    if view.in_other_header_rows(w, r, c) {
        miss *= 1.0 - rel.other_header_rows;
    }
    if view.in_other_columns(w, r, c) {
        miss *= 1.0 - rel.other_columns;
    }
    if view.body_frequent.contains(w) {
        miss *= 1.0 - rel.body;
    }
    1.0 - miss
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::QueryView;
    use wwt_model::{ContextSnippet, Query, TableId, WebTable};
    use wwt_text::CorpusStats;

    fn cfg() -> MapperConfig {
        MapperConfig::default()
    }

    fn qcol(text: &str) -> QueryColumn {
        let q = Query::new(vec![text]);
        QueryView::new(&q, &CorpusStats::new()).columns.remove(0)
    }

    fn make_table(
        title: Option<&str>,
        headers: Vec<Vec<&str>>,
        rows: Vec<Vec<&str>>,
        context: &str,
    ) -> WebTable {
        WebTable::new(
            TableId(0),
            "u",
            title.map(String::from),
            headers
                .into_iter()
                .map(|r| r.into_iter().map(String::from).collect())
                .collect(),
            rows.into_iter()
                .map(|r| r.into_iter().map(String::from).collect())
                .collect(),
            if context.is_empty() {
                vec![]
            } else {
                vec![ContextSnippet::new(context, 0.9)]
            },
        )
        .unwrap()
    }

    fn view_of(t: &WebTable) -> TableView<'_> {
        TableView::new(t, &CorpusStats::new(), 0.3)
    }

    #[test]
    fn exact_header_match_scores_one() {
        let t = make_table(
            None,
            vec![vec!["Nationality", "Name"]],
            vec![vec!["Dutch", "Tasman"]],
            "",
        );
        let v = view_of(&t);
        let q = qcol("nationality");
        assert!((seg_sim(&q, &v, 0, &cfg()) - 1.0).abs() < 1e-9);
        assert!((cover(&q, &v, 0, &cfg()) - 1.0).abs() < 1e-9);
        // Wrong column scores 0 (no overlap).
        assert_eq!(seg_sim(&q, &v, 1, &cfg()), 0.0);
    }

    #[test]
    fn split_header_and_context_combine() {
        // "nobel prize winner": "winner" in header, "nobel prize" in context.
        let t = make_table(
            None,
            vec![vec!["Winner", "Year"]],
            vec![vec!["Curie", "1903"]],
            "List of Nobel Prize awards",
        );
        let v = view_of(&t);
        let q = qcol("nobel prize winner");
        let s = seg_sim(&q, &v, 0, &cfg());
        // in = "winner" (1/3 of norm, cosine 1), out = "nobel prize"
        // (2/3 of norm, context reliability 0.9) => 1/3 + 2/3*0.9 = 0.9333.
        assert!((s - (1.0 / 3.0 + 2.0 / 3.0 * 0.9)).abs() < 1e-9, "s = {s}");
        // Unsegmented whole-string cosine against header is much weaker.
        let mut un = cfg();
        un.similarity = SimilarityMode::Unsegmented;
        let u = seg_sim(&q, &v, 0, &un);
        assert!(u < s, "unsegmented {u} >= segmented {s}");
    }

    #[test]
    fn no_header_overlap_means_zero() {
        // Context matches but the header shares no token with the query:
        // table-level matches must not count for a specific column.
        let t = make_table(
            None,
            vec![vec!["ID", "Area"]],
            vec![vec!["7", "2236"]],
            "nobel prize winners of the world",
        );
        let v = view_of(&t);
        let q = qcol("nobel prize winner");
        assert_eq!(seg_sim(&q, &v, 0, &cfg()), 0.0);
        assert_eq!(seg_sim(&q, &v, 1, &cfg()), 0.0);
    }

    #[test]
    fn multi_row_split_header_concatenation_case() {
        // "main areas explored" split across two header rows of column 1.
        let t = make_table(
            None,
            vec![vec!["Name", "Main areas"], vec!["", "explored"]],
            vec![vec!["Tasman", "Oceania"]],
            "",
        );
        let v = view_of(&t);
        let q = qcol("areas explored");
        let s = seg_sim(&q, &v, 1, &cfg());
        // in = "areas" on row 0 (cos with "main areas" header), out =
        // "explored" found in the other header row (reliability 0.5), OR
        // in = "explored" on row 1 (cos 1), out = "areas" in other row.
        assert!(s > 0.7, "split-header score too low: {s}");
    }

    #[test]
    fn second_header_row_with_noise_uses_single_best() {
        // Row 2 header "chronological order" must not dilute row 1's match.
        let t = make_table(
            None,
            vec![
                vec!["Exploration", "Who explorer"],
                vec!["chronological order", ""],
            ],
            vec![vec!["Oceania", "Tasman"]],
            "",
        );
        let v = view_of(&t);
        let q = qcol("name of explorers");
        let s = seg_sim(&q, &v, 1, &cfg());
        // "explorer" matches row 0 of column 1 exactly; "name" is unmatched.
        // With uniform IDF: in-part norm 1/2, cosine("explorer","who explorer")
        // = 1/sqrt(2).
        assert!(s >= 0.3, "noisy second header hurt too much: {s}");
    }

    #[test]
    fn frequent_body_content_supports_query() {
        // "black metal bands": "band" in header, "black metal" frequent in
        // the genre column.
        let t = make_table(
            None,
            vec![vec!["Band name", "Country", "Genre"]],
            vec![
                vec!["Mayhem", "Norway", "Black metal"],
                vec!["Burzum", "Norway", "Black metal"],
                vec!["Marduk", "Sweden", "Black metal"],
            ],
            "",
        );
        let v = view_of(&t);
        let q = qcol("black metal bands");
        let s = seg_sim(&q, &v, 0, &cfg());
        // in = "bands"→"band" (1/3 of norm, cos 1/sqrt2), out = "black
        // metal" at body reliability 0.8 => ≈ 0.7690.
        let expected = (1.0 / 3.0) * (1.0 / 2f64.sqrt()) + (2.0 / 3.0) * 0.8;
        assert!((s - expected).abs() < 1e-9, "s = {s}, expected {expected}");
    }

    #[test]
    fn other_column_header_supports_query() {
        // "dog breeds" against a table with separate "Dog" and "Breed"
        // columns: column "Dog" matches "dog", "breed" appears as another
        // column's header (reliability 1.0).
        let t = make_table(
            None,
            vec![vec!["Dog", "Breed", "Weight"]],
            vec![vec!["Rex", "Husky", "25kg"]],
            "",
        );
        let v = view_of(&t);
        let q = qcol("dog breeds");
        let s = seg_sim(&q, &v, 0, &cfg());
        // in = "dog" (cos 1), out = "breed" in other column (p = 1.0) => 1.
        assert!((s - 1.0).abs() < 1e-9, "s = {s}");
    }

    #[test]
    fn headerless_table_scores_zero() {
        let t = make_table(None, vec![], vec![vec!["a", "b"]], "relevant context words");
        let v = view_of(&t);
        let q = qcol("relevant context");
        assert_eq!(seg_sim(&q, &v, 0, &cfg()), 0.0);
        assert_eq!(cover(&q, &v, 0, &cfg()), 0.0);
    }

    #[test]
    fn empty_query_scores_zero() {
        let t = make_table(None, vec![vec!["A", "B"]], vec![vec!["1", "2"]], "");
        let v = view_of(&t);
        let q = qcol("of the"); // only stopwords
        assert_eq!(seg_sim(&q, &v, 0, &cfg()), 0.0);
    }

    #[test]
    fn scores_bounded_in_unit_interval() {
        let t = make_table(
            Some("Everything about explorers"),
            vec![
                vec!["Name of explorers", "Nationality"],
                vec!["explorer", ""],
            ],
            vec![vec!["Tasman", "Dutch"], vec!["Gama", "Portuguese"]],
            "explorers nationality name",
        );
        let v = view_of(&t);
        for text in ["name of explorers", "nationality", "explorers name"] {
            let q = qcol(text);
            for c in 0..2 {
                let s = seg_sim(&q, &v, c, &cfg());
                let cv = cover(&q, &v, c, &cfg());
                assert!((0.0..=1.0 + 1e-9).contains(&s), "segsim {s}");
                assert!((0.0..=1.0 + 1e-9).contains(&cv), "cover {cv}");
            }
        }
    }

    #[test]
    fn cover_counts_matched_fraction_not_cosine() {
        // Header has extra tokens: cosine drops, coverage stays 1.
        let t = make_table(
            None,
            vec![vec!["country name list official", "x"]],
            vec![vec!["India", "y"]],
            "",
        );
        let v = view_of(&t);
        let q = qcol("country");
        let s = seg_sim(&q, &v, 0, &cfg());
        let c = cover(&q, &v, 0, &cfg());
        assert!(c > s, "cover {c} should exceed cosine-based segsim {s}");
        assert!((c - 1.0).abs() < 1e-9);
    }
}
