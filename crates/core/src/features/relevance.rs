//! The whole-table relevance feature `R(Q,t)` (paper Eq. 2):
//!
//! ```text
//! R(Q,t) = (1/q) · clip( Σ_ℓ max_c Cover(Qℓ, tc),  min(q, 1.5) )
//! ```
//!
//! where `clip(a,b) = 0` if `a < b`, else `a`. Intuitively: the fraction of
//! query words matched somewhere useful in the table, zeroed unless the
//! total coverage clears 1.0 (single-column queries) or 1.5 (multi-column).

use crate::config::MapperConfig;
use crate::features::{cover, QueryView};
use crate::view::TableView;

/// Computes `R(Q, t)`.
pub fn table_relevance(qv: &QueryView, view: &TableView<'_>, cfg: &MapperConfig) -> f64 {
    let q = qv.q();
    if q == 0 {
        return 0.0;
    }
    let total: f64 = qv
        .columns
        .iter()
        .map(|qc| {
            (0..view.n_cols())
                .map(|c| cover(qc, view, c, cfg))
                .fold(0.0, f64::max)
        })
        .sum();
    let bar = (q as f64).min(1.5);
    let clipped = if total < bar { 0.0 } else { total };
    clipped / q as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_model::{Query, TableId, WebTable};
    use wwt_text::CorpusStats;

    fn make(headers: Vec<Vec<&str>>, rows: Vec<Vec<&str>>) -> WebTable {
        WebTable::new(
            TableId(0),
            "u",
            None,
            headers
                .into_iter()
                .map(|r| r.into_iter().map(String::from).collect())
                .collect(),
            rows.into_iter()
                .map(|r| r.into_iter().map(String::from).collect())
                .collect(),
            vec![],
        )
        .unwrap()
    }

    fn r_of(query: &str, t: &WebTable) -> f64 {
        let cfg = MapperConfig::default();
        let stats = CorpusStats::new();
        let q = Query::parse(query).unwrap();
        let qv = QueryView::new(&q, &stats);
        let view = TableView::new(t, &stats, cfg.body_freq_frac);
        table_relevance(&qv, &view, &cfg)
    }

    #[test]
    fn perfect_two_column_match() {
        let t = make(
            vec![vec!["Country", "Currency"]],
            vec![vec!["India", "Rupee"]],
        );
        // Both columns fully covered: total 2 >= 1.5 => R = 1.
        assert!((r_of("country | currency", &t) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weak_match_clipped_to_zero() {
        let t = make(vec![vec!["Country", "Area"]], vec![vec!["India", "3M"]]);
        // Only one of two columns covered: total 1 < 1.5 => clipped.
        assert_eq!(r_of("country | currency", &t), 0.0);
    }

    #[test]
    fn single_column_query_bar_is_one() {
        let t = make(vec![vec!["Dog breed", "Size"]], vec![vec!["Husky", "L"]]);
        // q = 1, total coverage = 1 (both tokens in header) >= 1 => R = 1.
        assert!((r_of("dog breed", &t) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn irrelevant_table_scores_zero() {
        let t = make(vec![vec!["ID", "Name"]], vec![vec!["7", "Hills"]]);
        assert_eq!(r_of("country | currency", &t), 0.0);
    }

    #[test]
    fn partial_multi_column_above_bar() {
        // 3-column query, two columns perfectly covered: total 2 >= 1.5,
        // R = 2/3.
        let t = make(
            vec![vec!["Food", "Fat", "Color"]],
            vec![vec!["Rice", "0.3", "white"]],
        );
        let r = r_of("food | fat | protein", &t);
        assert!((r - 2.0 / 3.0).abs() < 1e-9, "r = {r}");
    }
}
