//! The PMI² co-occurrence feature (paper §3.2.3, after Cafarella et al.).
//!
//! ```text
//! PMI²(Qℓ, tc) = (1/#Rows(t)) Σ_r |H(Qℓ) ∩ B(Cell(t,r,c))|²
//!                               / (|H(Qℓ)| · |B(Cell(t,r,c))|)
//! ```
//!
//! `H(Qℓ)` — tables whose header or context contains all of `Qℓ`'s
//! keywords; `B(cell)` — tables whose content contains the cell's words.
//! Both are conjunctive doc-set probes against the corpus index; the paper
//! found the feature noisy (§5.1: it helps some queries, hurts an equal
//! number, and is ~6× slower), and WWT leaves it off by default.

use crate::features::QueryColumn;
use crate::view::TableView;
use wwt_index::{DocSets, Field};
use wwt_text::tokenize;

/// Computes `PMI²(Qℓ, tc)` against the corpus `index`.
pub fn pmi2(q: &QueryColumn, view: &TableView<'_>, c: usize, index: &dyn DocSets) -> f64 {
    if q.tokens.is_empty() {
        return 0.0;
    }
    let h_set = index.docs_with_all(&q.tokens, &[Field::Header, Field::Context]);
    if h_set.is_empty() {
        return 0.0;
    }
    let n_rows = view.table.n_rows();
    if n_rows == 0 {
        return 0.0;
    }
    let mut sum = 0.0;
    for r in 0..n_rows {
        let cell_tokens = tokenize(view.table.cell(r, c));
        if cell_tokens.is_empty() {
            continue;
        }
        let b_set = index.docs_with_all(&cell_tokens, &[Field::Content]);
        if b_set.is_empty() {
            continue;
        }
        let inter = intersection_count(&h_set, &b_set) as f64;
        sum += inter * inter / (h_set.len() as f64 * b_set.len() as f64);
    }
    sum / n_rows as f64
}

/// Size of the intersection of two sorted id lists.
fn intersection_count(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::QueryView;
    use wwt_index::{IndexBuilder, TableIndex};
    use wwt_model::{ContextSnippet, Query, TableId, WebTable};
    use wwt_text::CorpusStats;

    fn t(id: u32, header: &str, context: &str, rows: Vec<Vec<&str>>) -> WebTable {
        WebTable::new(
            TableId(id),
            "u",
            None,
            vec![header.split('|').map(str::to_string).collect()],
            rows.into_iter()
                .map(|r| r.into_iter().map(String::from).collect())
                .collect(),
            vec![ContextSnippet::new(context, 0.8)],
        )
        .unwrap()
    }

    /// Corpus: two "mountain" tables sharing peak names, one unrelated
    /// table sharing a generic token.
    fn corpus() -> (Vec<WebTable>, TableIndex) {
        let tables = vec![
            t(
                0,
                "Mountain|Height",
                "mountains of north america",
                vec![vec!["Denali", "6190"], vec!["Logan", "5959"]],
            ),
            t(
                1,
                "Peak|Elevation",
                "list of north american mountains",
                vec![vec!["Denali", "20310ft"], vec!["Whitney", "14505ft"]],
            ),
            t(
                2,
                "Company|CEO",
                "fortune 500 companies",
                vec![vec!["Acme", "Smith"], vec!["Logan Corp", "Jones"]],
            ),
        ];
        let mut b = IndexBuilder::new();
        for table in &tables {
            b.add_table(table);
        }
        (tables, b.build())
    }

    fn qcol(text: &str, stats: &CorpusStats) -> crate::features::QueryColumn {
        QueryView::new(&Query::new(vec![text]), stats)
            .columns
            .remove(0)
    }

    #[test]
    fn mountain_column_scores_higher_than_height_column() {
        let (tables, index) = corpus();
        let q = qcol("north american mountains", index.stats());
        let view = TableView::new(&tables[0], index.stats(), 0.3);
        let name_col = pmi2(&q, &view, 0, &index);
        let height_col = pmi2(&q, &view, 1, &index);
        assert!(
            name_col > height_col,
            "name {name_col} vs height {height_col}"
        );
        assert!(name_col > 0.0);
    }

    #[test]
    fn unrelated_query_scores_zero() {
        let (tables, index) = corpus();
        let q = qcol("unknown nonsense zzz", index.stats());
        let view = TableView::new(&tables[0], index.stats(), 0.3);
        assert_eq!(pmi2(&q, &view, 0, &index), 0.0);
    }

    #[test]
    fn bounded_by_one() {
        let (tables, index) = corpus();
        for table in &tables {
            let view = TableView::new(table, index.stats(), 0.3);
            let q = qcol("north american mountains", index.stats());
            for c in 0..table.n_cols() {
                let v = pmi2(&q, &view, c, &index);
                assert!((0.0..=1.0).contains(&v), "pmi {v}");
            }
        }
    }

    #[test]
    fn intersection_count_basics() {
        assert_eq!(intersection_count(&[1, 2, 3], &[2, 3, 4]), 2);
        assert_eq!(intersection_count(&[], &[1]), 0);
        assert_eq!(intersection_count(&[5], &[5]), 1);
    }
}
