//! Node-potential features (paper §3.2).
//!
//! * [`seg_sim`] / [`cover`] — the two-part segmented query similarity
//!   (Eq. 1) and its coverage variant (§3.2.2);
//! * [`pmi2`] — corpus-wide co-occurrence of query keywords with column
//!   content (§3.2.3);
//! * [`table_relevance`] — the whole-table relevance feature `R(Q,t)`
//!   (Eq. 2).

mod pmi;
mod relevance;
mod segsim;

pub use pmi::pmi2;
pub use relevance::table_relevance;
pub(crate) use segsim::{bind_query_column, seg_and_cover_interned};
pub use segsim::{cover, seg_sim};

use wwt_model::Query;
use wwt_text::{tokenize, CorpusStats, TfIdfVector};

/// A query column preprocessed for feature computation: tokens with their
/// `TI(w)` weights (query-side TF is 1, so `TI(w) = idf(w)`).
#[derive(Debug, Clone)]
pub struct QueryColumn {
    /// Tokens `q_1..q_m` in order.
    pub tokens: Vec<String>,
    /// `TI(w)` per token.
    pub ti: Vec<f64>,
    /// `‖Q_ℓ‖²  = Σ TI(w)²` (duplicate tokens counted once per position).
    pub norm_sq: f64,
    /// TF-IDF vector over the tokens (for unsegmented cosine).
    pub vec: TfIdfVector,
}

/// All query columns preprocessed.
#[derive(Debug, Clone)]
pub struct QueryView {
    /// One entry per query column.
    pub columns: Vec<QueryColumn>,
}

impl QueryView {
    /// Tokenizes and weights every query column with `stats` IDF.
    pub fn new(query: &Query, stats: &CorpusStats) -> Self {
        let columns = query
            .columns
            .iter()
            .map(|text| {
                let tokens = tokenize(text);
                let ti: Vec<f64> = tokens.iter().map(|t| stats.idf(t)).collect();
                let norm_sq = ti.iter().map(|w| w * w).sum();
                let vec = TfIdfVector::from_tokens(&tokens, stats);
                QueryColumn {
                    tokens,
                    ti,
                    norm_sq,
                    vec,
                }
            })
            .collect();
        QueryView { columns }
    }

    /// Number of query columns `q`.
    pub fn q(&self) -> usize {
        self.columns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_view_tokenization() {
        let q = Query::parse("name of explorers | nationality").unwrap();
        let v = QueryView::new(&q, &CorpusStats::new());
        assert_eq!(v.q(), 2);
        assert_eq!(v.columns[0].tokens, vec!["name", "explorer"]);
        // Uniform IDF = 1 on empty stats.
        assert_eq!(v.columns[0].norm_sq, 2.0);
        assert_eq!(v.columns[1].ti, vec![1.0]);
    }

    #[test]
    fn empty_keywords_tolerated() {
        let q = Query::new(vec!["of the"]); // all stopwords
        let v = QueryView::new(&q, &CorpusStats::new());
        assert!(v.columns[0].tokens.is_empty());
        assert_eq!(v.columns[0].norm_sq, 0.0);
    }
}
