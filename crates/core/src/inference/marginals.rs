//! Per-table max-marginals and calibrated probabilities (paper §4.2.3).
//!
//! `µ_tc(ℓ)` is the best score of Eq. 9 (no edge potentials) with column
//! `c` forced to label `ℓ`, under `mutex` and `all-Irr` only — the
//! `must-match`/`min-match` constraints are deliberately excluded so that
//! relative magnitudes stay undistorted (§4.2.3). Probabilities are the
//! softmax `p_tc(ℓ) = exp µ_tc(ℓ) / Σ exp µ_tc(ℓ')`; a column is
//! *confident* when some query label exceeds the confidence threshold
//! (paper: 0.6). These probabilities drive the edge gating (Eq. 4), the
//! table-centric messages, and the second index probe's top-2 selection.

use crate::config::MapperConfig;
use crate::potentials::NodePotentials;
use wwt_graph::{max_marginals, Assignment};

/// Max-marginals, probabilities and confidence flags for one table.
#[derive(Debug, Clone)]
pub struct TableMarginals {
    /// `mu[c][dense_label]` with the dense order `Col(0..q-1), Na, Nr`.
    pub mu: Vec<Vec<f64>>,
    /// Softmax-calibrated `p[c][dense_label]`.
    pub probs: Vec<Vec<f64>>,
    /// Per column: `max_{ℓ ∈ 1..q} p > confidence_threshold`.
    pub confident: Vec<bool>,
    /// Table-level relevance probability: `1 − mean_c p(nr)`.
    pub relevance_prob: f64,
}

/// Computes Figure 3's max-marginals for one table and calibrates them.
pub fn table_marginals(pots: &NodePotentials, cfg: &MapperConfig) -> TableMarginals {
    let nt = pots.n_cols();
    let q = pots.q;
    // Bins: q labels (cap 1, mutex) + na (cap nt: unconstrained — the
    // min-match constraint is excluded here).
    let mut bin_caps = vec![1u32; q];
    bin_caps.push(nt as u32);
    let weights: Vec<Vec<f64>> = (0..nt)
        .map(|c| {
            let mut row: Vec<f64> = (0..q).map(|l| pots.theta[c][l]).collect();
            row.push(0.0); // na
            row
        })
        .collect();
    let assignment_mu = max_marginals(&Assignment { bin_caps, weights });
    let nr_score = pots.all_nr_score();

    let mu: Vec<Vec<f64>> = (0..nt)
        .map(|c| {
            let mut row: Vec<f64> = assignment_mu[c].clone(); // q + 1 entries
            row.push(nr_score); // µ(nr): all-Irr forces the whole table nr
            row
        })
        .collect();
    let probs: Vec<Vec<f64>> = mu
        .iter()
        .map(|row| softmax(row, cfg.calibration_temperature))
        .collect();
    let confident: Vec<bool> = probs
        .iter()
        .map(|p| p[..q].iter().cloned().fold(0.0f64, f64::max) > cfg.confidence_threshold)
        .collect();
    let relevance_prob = if nt == 0 {
        0.0
    } else {
        1.0 - probs.iter().map(|p| p[q + 1]).sum::<f64>() / nt as f64
    };
    TableMarginals {
        mu,
        probs,
        confident,
        relevance_prob,
    }
}

fn softmax(xs: &[f64], temperature: f64) -> Vec<f64> {
    let t = temperature.max(1e-6);
    let mx = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !mx.is_finite() {
        // All labels infeasible: uniform.
        return vec![1.0 / xs.len() as f64; xs.len()];
    }
    let exps: Vec<f64> = xs.iter().map(|&x| ((x - mx) / t).exp()).collect();
    let z: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / z).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pots(q: usize, theta: Vec<Vec<f64>>) -> NodePotentials {
        NodePotentials {
            q,
            theta,
            relevance: 0.0,
        }
    }

    fn cfg() -> MapperConfig {
        MapperConfig::default()
    }

    #[test]
    fn probabilities_normalized() {
        let p = pots(2, vec![vec![2.0, 0.1, 0.0, 0.2], vec![0.1, 1.5, 0.0, 0.2]]);
        let m = table_marginals(&p, &cfg());
        for row in &m.probs {
            let z: f64 = row.iter().sum();
            assert!((z - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn strong_match_is_confident() {
        let p = pots(
            2,
            vec![vec![4.0, -1.0, 0.0, -1.0], vec![-1.0, 4.0, 0.0, -1.0]],
        );
        let m = table_marginals(&p, &cfg());
        assert!(m.confident[0] && m.confident[1]);
        assert!(m.probs[0][0] > 0.9);
        assert!(m.probs[1][1] > 0.9);
        assert!(m.relevance_prob > 0.9);
    }

    #[test]
    fn weak_table_not_confident_low_relevance() {
        let p = pots(
            2,
            vec![vec![-0.2, -0.2, 0.0, 2.0], vec![-0.2, -0.2, 0.0, 2.0]],
        );
        let m = table_marginals(&p, &cfg());
        assert!(!m.confident[0] && !m.confident[1]);
        assert!(m.relevance_prob < 0.3, "rel {}", m.relevance_prob);
    }

    #[test]
    fn mutex_shows_in_marginals() {
        // Two columns both strong on Q1; forcing col 1 to Q1 pushes col 0
        // off it (to na), so µ[1][Q1] < µ[1] when col0 keeps Q1... verify
        // the marginal reflects the exclusion cost.
        let p = pots(1, vec![vec![3.0, 0.0, 0.0], vec![2.0, 0.0, 0.0]]);
        let m = table_marginals(&p, &cfg());
        // Best overall: col0=Q1 (3), col1=na (0) => 3.
        assert!((m.mu[0][0] - 3.0).abs() < 1e-9);
        // Forcing col1=Q1: col0 must drop to na => total 2.
        assert!((m.mu[1][0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn nr_marginal_is_whole_table_score() {
        let p = pots(1, vec![vec![1.0, 0.0, 0.4], vec![0.5, 0.0, 0.4]]);
        let m = table_marginals(&p, &cfg());
        // µ(nr) = 0.4 + 0.4 for every column.
        assert!((m.mu[0][2] - 0.8).abs() < 1e-9);
        assert!((m.mu[1][2] - 0.8).abs() < 1e-9);
    }

    #[test]
    fn min_match_not_applied_in_marginals() {
        // Single strong column in a 2-col table with q=2: µ allows mapping
        // just one column (min-match excluded per §4.2.3).
        let p = pots(
            2,
            vec![vec![2.0, -1.0, 0.0, 0.0], vec![-1.0, -1.0, 0.0, 0.0]],
        );
        let m = table_marginals(&p, &cfg());
        // µ[0][Q1] = 2.0 (col1 free to take na).
        assert!((m.mu[0][0] - 2.0).abs() < 1e-9);
    }
}
