//! Table-centric collective inference (paper §4.2) — the algorithm the
//! paper found best in both accuracy and running time.
//!
//! Three stages:
//! 1. per table, max-marginal probabilities `p_tc(ℓ)` (Figure 3);
//! 2. per column, neighbor messages
//!    `msg(tc, ℓ) = Σ_{t'c' ∈ nbr(tc)} we · nsim(tc, t'c') · p_t'c'(ℓ)`,
//!    restricted to *confident* senders (the gate of Eq. 4);
//! 3. per table, re-solve §4.1's matching with node potentials
//!    `max(msg(tc, ℓ), θ(tc, ℓ))`.

use crate::colsim::ColumnEdge;
use crate::config::MapperConfig;
use crate::inference::independent::solve_table;
use crate::inference::marginals::{table_marginals, TableMarginals};
use crate::potentials::NodePotentials;
use wwt_model::Label;

/// Output of the collective table-centric pass.
#[derive(Debug, Clone)]
pub struct TableCentricResult {
    /// Final labels per table.
    pub labels: Vec<Vec<Label>>,
    /// Stage-1 marginals (probabilities, confidence, relevance).
    pub marginals: Vec<TableMarginals>,
}

/// Runs the three-stage table-centric algorithm.
///
/// `pots[i]` are the node potentials of candidate table `i`; `edges` the
/// cross-table max-matching edges; `m_eff` the per-table effective
/// `min-match` values.
pub fn table_centric(
    pots: &[NodePotentials],
    edges: &[ColumnEdge],
    m_eff: &[usize],
    cfg: &MapperConfig,
) -> TableCentricResult {
    let q = pots.first().map(|p| p.q).unwrap_or(0);
    // Stage 1: independent marginals.
    let marginals: Vec<TableMarginals> = pots.iter().map(|p| table_marginals(p, cfg)).collect();

    // Stage 2: messages. Only labels 1..q and na travel (nr is excluded by
    // Eq. 4's ℓ ≠ nr condition).
    let we = cfg.weights.we;
    let mut msg: Vec<Vec<Vec<f64>>> = pots
        .iter()
        .map(|p| vec![vec![0.0f64; q + 1]; p.n_cols()])
        .collect();
    for e in edges {
        let (ta, ca) = e.a;
        let (tb, cb) = e.b;
        // b -> a, gated on b's confidence.
        if marginals[tb].confident[cb] {
            for l in 0..=q {
                msg[ta][ca][l] += we * e.nsim_ab * marginals[tb].probs[cb][l];
            }
        }
        // a -> b.
        if marginals[ta].confident[ca] {
            for l in 0..=q {
                msg[tb][cb][l] += we * e.nsim_ba * marginals[ta].probs[ca][l];
            }
        }
    }

    // Stage 3: per-table re-solve with boosted potentials. A message is
    // *evidence* like SegSim/Cover, so the assignment bias w5 still
    // applies on top of it: θ' = max(θ, w5 + msg), and only where a
    // message actually arrived (otherwise max(0, θ) would silently erase
    // the bias on isolated columns and flip borderline tables relevant).
    let w5 = cfg.weights.w5;
    let labels = pots
        .iter()
        .enumerate()
        .map(|(t, p)| {
            let boosted_theta: Vec<Vec<f64>> = (0..p.n_cols())
                .map(|c| {
                    let mut row = p.theta[c].clone();
                    for (l, r) in row.iter_mut().enumerate().take(q) {
                        if msg[t][c][l] > 0.0 {
                            *r = r.max(w5 + msg[t][c][l]);
                        }
                    }
                    // na (dense q) stays 0; nr untouched.
                    row
                })
                .collect();
            let boosted = NodePotentials {
                q: p.q,
                theta: boosted_theta,
                relevance: p.relevance,
            };
            solve_table(&boosted, m_eff[t]).0
        })
        .collect();

    TableCentricResult { labels, marginals }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pots(q: usize, theta: Vec<Vec<f64>>) -> NodePotentials {
        NodePotentials {
            q,
            theta,
            relevance: 0.0,
        }
    }

    fn cfg() -> MapperConfig {
        MapperConfig::default()
    }

    /// A confident source table and a headerless (zero-potential) sink
    /// table connected by a strong content edge.
    #[test]
    fn confident_neighbor_rescues_headerless_table() {
        let source = pots(1, vec![vec![3.0, 0.0, 0.1], vec![-0.5, 0.0, 0.1]]);
        // Sink: no header → zero query potentials, mild nr pull: would be
        // labeled nr on its own.
        let sink = pots(1, vec![vec![-0.35, 0.0, 0.3], vec![-0.35, 0.0, 0.3]]);
        let edges = vec![ColumnEdge {
            a: (0, 0),
            b: (1, 0),
            sim: 0.9,
            nsim_ab: 0.75,
            nsim_ba: 0.75,
        }];
        let r = table_centric(&[source, sink], &edges, &[1, 1], &cfg());
        assert_eq!(r.labels[0][0], Label::Col(0));
        assert_eq!(
            r.labels[1][0],
            Label::Col(0),
            "edge should rescue the sink table: {:?}",
            r.labels
        );
    }

    #[test]
    fn unconfident_neighbor_sends_nothing() {
        // Source is weak (not confident): sink must stay nr.
        let source = pots(1, vec![vec![0.2, 0.0, 0.15], vec![0.0, 0.0, 0.15]]);
        let sink = pots(1, vec![vec![-0.35, 0.0, 0.3], vec![-0.35, 0.0, 0.3]]);
        let edges = vec![ColumnEdge {
            a: (0, 0),
            b: (1, 0),
            sim: 0.9,
            nsim_ab: 0.75,
            nsim_ba: 0.75,
        }];
        let r = table_centric(&[source, sink], &edges, &[1, 1], &cfg());
        assert_eq!(r.labels[1], vec![Label::Nr, Label::Nr]);
    }

    #[test]
    fn messages_never_downgrade_potentials() {
        // max(msg, θ): a strong own-potential must survive a weak message.
        let a = pots(1, vec![vec![3.0, 0.0, 0.0]]);
        let b = pots(1, vec![vec![2.5, 0.0, 0.0]]);
        let edges = vec![ColumnEdge {
            a: (0, 0),
            b: (1, 0),
            sim: 0.2,
            nsim_ab: 0.1,
            nsim_ba: 0.1,
        }];
        let r = table_centric(&[a, b], &edges, &[1, 1], &cfg());
        assert_eq!(r.labels[0][0], Label::Col(0));
        assert_eq!(r.labels[1][0], Label::Col(0));
    }

    #[test]
    fn no_edges_equals_independent() {
        let a = pots(1, vec![vec![1.0, 0.0, 0.2], vec![-0.2, 0.0, 0.2]]);
        let independent = solve_table(&a, 1).0;
        let r = table_centric(&[a], &[], &[1], &cfg());
        assert_eq!(r.labels[0], independent);
    }

    #[test]
    fn empty_input() {
        let r = table_centric(&[], &[], &[], &cfg());
        assert!(r.labels.is_empty());
        assert!(r.marginals.is_empty());
    }
}
