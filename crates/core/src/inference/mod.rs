//! Inference algorithms for the column-mapping objective (paper §4).
//!
//! * [`independent`] — exact per-table inference via generalized bipartite
//!   matching (§4.1; edge potentials ignored);
//! * [`marginals`] — per-table max-marginals and calibrated label
//!   probabilities (§4.2.3, Figure 3);
//! * [`table_centric`] — the collective algorithm the paper found best:
//!   marginal-weighted neighbor messages, then per-table re-solve (§4.2);
//! * [`edge_centric`] — the α-expansion / BP / TRW-S alternatives over the
//!   full pairwise model with constraints lowered or handled by constrained
//!   cuts (§4.3).

pub mod edge_centric;
pub mod independent;
pub mod marginals;
pub mod table_centric;

pub use edge_centric::{edge_centric, EdgeCentricAlgorithm};
pub use independent::solve_table;
pub use marginals::{table_marginals, TableMarginals};
pub use table_centric::table_centric;
