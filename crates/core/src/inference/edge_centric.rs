//! Edge-centric collective inference (paper §4.3): the full pairwise model
//! solved with constrained α-expansion, loopy BP, or TRW-S.
//!
//! Model assembly:
//! * one variable per (table, column), dense labels `Col(0..q-1), Na, Nr`;
//! * node potentials = Eq. 3;
//! * cross-table Potts edges = Eq. 4 (confidence-gated, nsim-weighted,
//!   equal non-`nr` labels);
//! * `all-Irr` lowered to pairwise potentials within each table (Eq. 11);
//! * `mutex`: for α-expansion, handled by constrained cuts on the move
//!   graphs (Figure 4); for BP/TRW-S, lowered to dissociative pairwise
//!   potentials (the paper does the same and blames this for their
//!   weaker accuracy);
//! * `must-match` / `min-match`: repaired post hoc per table with the
//!   §4.1 solver, as the paper prescribes.

use crate::colsim::ColumnEdge;
use crate::config::MapperConfig;
use crate::inference::independent::solve_table;
use crate::inference::marginals::{table_marginals, TableMarginals};
use crate::potentials::NodePotentials;
use wwt_graph::{
    alpha_expansion, loopy_bp, trws, AlphaOptions, BpOptions, PairwiseMrf, TrwsOptions,
    NEG_INF_SCORE,
};
use wwt_model::{Label, Labeling, TableId};

/// Which edge-centric solver to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeCentricAlgorithm {
    /// Constrained α-expansion (§4.3, Figure 4).
    AlphaExpansion,
    /// Loopy max-product belief propagation.
    BeliefPropagation,
    /// Sequential tree-reweighted message passing.
    Trws,
}

/// Result of an edge-centric pass.
#[derive(Debug, Clone)]
pub struct EdgeCentricResult {
    /// Final labels per table.
    pub labels: Vec<Vec<Label>>,
    /// Stage-1 marginals (for gating and downstream scoring).
    pub marginals: Vec<TableMarginals>,
}

/// Runs edge-centric inference over all candidate tables.
pub fn edge_centric(
    pots: &[NodePotentials],
    edges: &[ColumnEdge],
    m_eff: &[usize],
    cfg: &MapperConfig,
    algorithm: EdgeCentricAlgorithm,
) -> EdgeCentricResult {
    let q = pots.first().map(|p| p.q).unwrap_or(0);
    let n_labels = q + 2;
    let marginals: Vec<TableMarginals> = pots.iter().map(|p| table_marginals(p, cfg)).collect();

    // Variable layout: tables in order, columns within.
    let mut var_of: Vec<Vec<usize>> = Vec::with_capacity(pots.len());
    let mut node_pot: Vec<Vec<f64>> = Vec::new();
    for p in pots {
        let mut vars = Vec::with_capacity(p.n_cols());
        for c in 0..p.n_cols() {
            vars.push(node_pot.len());
            node_pot.push(p.theta[c].clone());
        }
        var_of.push(vars);
    }
    if node_pot.is_empty() {
        return EdgeCentricResult {
            labels: Vec::new(),
            marginals,
        };
    }
    let mut mrf = PairwiseMrf::new(node_pot);

    // Intra-table constraint edges.
    let lower_mutex = algorithm != EdgeCentricAlgorithm::AlphaExpansion;
    for (t, vars) in var_of.iter().enumerate() {
        let _ = t;
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                let mut pot = vec![0.0f64; n_labels * n_labels];
                // all-Irr (Eq. 11): exactly one endpoint nr is forbidden.
                let nr = q + 1;
                for l in 0..n_labels {
                    if l != nr {
                        pot[l * n_labels + nr] = NEG_INF_SCORE;
                        pot[nr * n_labels + l] = NEG_INF_SCORE;
                    }
                }
                if lower_mutex {
                    for l in 0..q {
                        pot[l * n_labels + l] = NEG_INF_SCORE;
                    }
                }
                mrf.add_edge(vars[i], vars[j], pot);
            }
        }
    }

    // Cross-table Potts edges (Eq. 4).
    let we = cfg.weights.we;
    for e in edges {
        let (ta, ca) = e.a;
        let (tb, cb) = e.b;
        let w = we
            * (e.nsim_ab * f64::from(u8::from(marginals[tb].confident[cb]))
                + e.nsim_ba * f64::from(u8::from(marginals[ta].confident[ca])));
        if w > 0.0 {
            // Equal labels rewarded except nr (dense q+1).
            mrf.add_potts_edge(var_of[ta][ca], var_of[tb][cb], w, &[q + 1]);
        }
    }

    // Initial labeling: everything na (as the paper suggests).
    let init = vec![q; mrf.n_vars()];
    let raw = match algorithm {
        EdgeCentricAlgorithm::AlphaExpansion => {
            let opts = AlphaOptions {
                max_rounds: 8,
                mutex_groups: var_of.clone(),
                constrained_labels: (0..q).collect(),
            };
            alpha_expansion(&mrf, init, &opts)
        }
        EdgeCentricAlgorithm::BeliefPropagation => loopy_bp(
            &mrf,
            &BpOptions {
                iterations: 40,
                damping: 0.5,
            },
        ),
        EdgeCentricAlgorithm::Trws => trws(&mrf, &TrwsOptions { sweeps: 25 }),
    };

    // Decode per table and repair constraint violations with the §4.1
    // solver (the paper's post-processing).
    let labels: Vec<Vec<Label>> = var_of
        .iter()
        .enumerate()
        .map(|(t, vars)| {
            let decoded: Vec<Label> = vars.iter().map(|&v| Label::from_dense(raw[v], q)).collect();
            let ok = Labeling::new(TableId(0), decoded.clone()).satisfies_constraints(q, m_eff[t]);
            if ok {
                decoded
            } else {
                solve_table(&pots[t], m_eff[t]).0
            }
        })
        .collect();

    EdgeCentricResult { labels, marginals }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pots(q: usize, theta: Vec<Vec<f64>>) -> NodePotentials {
        NodePotentials {
            q,
            theta,
            relevance: 0.0,
        }
    }

    fn cfg() -> MapperConfig {
        MapperConfig::default()
    }

    fn algorithms() -> [EdgeCentricAlgorithm; 3] {
        [
            EdgeCentricAlgorithm::AlphaExpansion,
            EdgeCentricAlgorithm::BeliefPropagation,
            EdgeCentricAlgorithm::Trws,
        ]
    }

    #[test]
    fn clean_table_mapped_by_all_algorithms() {
        for alg in algorithms() {
            let p = pots(
                2,
                vec![vec![2.0, -0.3, 0.0, 0.1], vec![-0.3, 2.0, 0.0, 0.1]],
            );
            let r = edge_centric(&[p], &[], &[2], &cfg(), alg);
            assert_eq!(r.labels[0], vec![Label::Col(0), Label::Col(1)], "{alg:?}");
        }
    }

    #[test]
    fn irrelevant_table_all_nr_by_all_algorithms() {
        for alg in algorithms() {
            let p = pots(
                2,
                vec![vec![-0.3, -0.3, 0.0, 0.5], vec![-0.3, -0.3, 0.0, 0.5]],
            );
            let r = edge_centric(&[p], &[], &[2], &cfg(), alg);
            assert_eq!(r.labels[0], vec![Label::Nr, Label::Nr], "{alg:?}");
        }
    }

    #[test]
    fn constraints_hold_after_postprocessing() {
        for alg in algorithms() {
            // Messy instance: conflicting pulls.
            let a = pots(
                2,
                vec![
                    vec![0.8, 0.7, 0.0, 0.2],
                    vec![0.75, 0.7, 0.0, 0.2],
                    vec![0.1, 0.1, 0.0, 0.2],
                ],
            );
            let b = pots(
                2,
                vec![vec![0.3, 0.2, 0.0, 0.25], vec![0.2, 0.3, 0.0, 0.25]],
            );
            let edges = vec![ColumnEdge {
                a: (0, 0),
                b: (1, 0),
                sim: 0.5,
                nsim_ab: 0.4,
                nsim_ba: 0.4,
            }];
            let r = edge_centric(&[a, b], &edges, &[2, 2], &cfg(), alg);
            for (t, labels) in r.labels.iter().enumerate() {
                assert!(
                    Labeling::new(TableId(t as u32), labels.clone()).satisfies_constraints(2, 2),
                    "{alg:?} table {t}: {labels:?}"
                );
            }
        }
    }

    #[test]
    fn edge_rescues_weak_table_alpha() {
        // Strong source, weak sink connected by a confident edge: the Potts
        // reward should flip the sink to relevant under α-expansion.
        let source = pots(1, vec![vec![3.0, 0.0, 0.1], vec![-0.5, 0.0, 0.1]]);
        let sink = pots(1, vec![vec![-0.1, 0.0, 0.12], vec![-0.3, 0.0, 0.12]]);
        let edges = vec![ColumnEdge {
            a: (0, 0),
            b: (1, 0),
            sim: 0.9,
            nsim_ab: 0.75,
            nsim_ba: 0.75,
        }];
        let r = edge_centric(
            &[source, sink],
            &edges,
            &[1, 1],
            &cfg(),
            EdgeCentricAlgorithm::AlphaExpansion,
        );
        assert_eq!(r.labels[0][0], Label::Col(0));
        assert_eq!(r.labels[1][0], Label::Col(0), "{:?}", r.labels);
    }

    #[test]
    fn empty_input_all_algorithms() {
        for alg in algorithms() {
            let r = edge_centric(&[], &[], &[], &cfg(), alg);
            assert!(r.labels.is_empty());
        }
    }
}
