//! Table-independent inference (paper §4.1).
//!
//! With edge potentials absent, tables decouple. For each table we solve a
//! generalized maximum matching: columns (unit capacity) against the bins
//! `{Q1..Qq}` (capacity 1 — `mutex`) and `na` (capacity `nt − m` —
//! `min-match`), with a large additive bonus `M` on `Q1` edges enforcing
//! `must-match`. The resulting best *relevant* labeling is compared against
//! labeling every column `nr` (`all-Irr` makes that the only alternative),
//! and the higher-scoring option wins.

use crate::potentials::NodePotentials;
use wwt_graph::{solve_assignment, Assignment};
use wwt_model::Label;

/// Bonus added to Q1-edges so the optimal matching satisfies `must-match`
/// whenever feasible. Removed again before scores are compared.
const MUST_MATCH_BONUS: f64 = 1.0e6;

/// Solves one table exactly under the node potentials and the four table
/// constraints. Returns the labeling and its node-potential score.
///
/// `m_eff` is the effective `min-match` (already capped by table width).
pub fn solve_table(pots: &NodePotentials, m_eff: usize) -> (Vec<Label>, f64) {
    let nt = pots.n_cols();
    let q = pots.q;
    let all_nr = (vec![Label::Nr; nt], pots.all_nr_score());
    // Exact early exit: when even the per-column upper bound on relevant
    // labelings cannot strictly beat all-`nr`, skip the min-cost-flow
    // solve entirely. [`NodePotentials::relevant_upper_bound`] proves the
    // bound dominates every relevant labeling's (identically ordered)
    // float sum, so this returns exactly what the full solve would.
    if pots.relevant_upper_bound() <= all_nr.1 {
        return all_nr.tap_assert(q);
    }
    match best_relevant_labeling(pots, m_eff) {
        Some((labels, score)) if score > all_nr.1 => (labels, score),
        _ => all_nr,
    }
    .tap_assert(q)
}

/// The best labeling with the table forced relevant, or `None` if the
/// constraints cannot be met (e.g. fewer feasible columns than `m_eff`).
pub fn best_relevant_labeling(pots: &NodePotentials, m_eff: usize) -> Option<(Vec<Label>, f64)> {
    let nt = pots.n_cols();
    let q = pots.q;
    if nt == 0 {
        return None;
    }
    // Bins: q query labels (cap 1) then na (cap nt − m).
    let mut bin_caps = vec![1u32; q];
    bin_caps.push(nt.saturating_sub(m_eff) as u32);
    let weights: Vec<Vec<f64>> = (0..nt)
        .map(|c| {
            let mut row: Vec<f64> = (0..q)
                .map(|l| {
                    let theta = pots.theta[c][l];
                    if l == 0 {
                        theta + MUST_MATCH_BONUS
                    } else {
                        theta
                    }
                })
                .collect();
            row.push(0.0); // na: θ = 0
            row
        })
        .collect();
    let sol = solve_assignment(&Assignment { bin_caps, weights })?;
    let labels: Vec<Label> = sol
        .assignment
        .iter()
        .map(|&b| if b < q { Label::Col(b) } else { Label::Na })
        .collect();
    // must-match must actually hold (the bonus makes it optimal whenever
    // feasible; if no column can take Q1 the capacity still allows skipping
    // it, so verify).
    if !labels.contains(&Label::Col(0)) {
        return None;
    }
    let score = pots.labeling_score(&labels);
    Some((labels, score))
}

trait TapAssert {
    fn tap_assert(self, q: usize) -> Self;
}

impl TapAssert for (Vec<Label>, f64) {
    fn tap_assert(self, q: usize) -> Self {
        debug_assert!(
            wwt_model::Labeling::new(wwt_model::TableId(0), self.0.clone())
                .satisfies_constraints(q, 1),
            "solver produced inconsistent labeling {:?}",
            self.0
        );
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds potentials directly (bypassing features) for solver tests.
    fn pots(q: usize, theta: Vec<Vec<f64>>) -> NodePotentials {
        NodePotentials {
            q,
            theta,
            relevance: 0.0,
        }
    }

    #[test]
    fn clean_two_column_mapping() {
        // cols: 0 ↔ Q1, 1 ↔ Q2; nr unattractive.
        let p = pots(
            2,
            vec![vec![1.0, -0.3, 0.0, 0.1], vec![-0.3, 1.0, 0.0, 0.1]],
        );
        let (labels, score) = solve_table(&p, 2);
        assert_eq!(labels, vec![Label::Col(0), Label::Col(1)]);
        assert!((score - 2.0).abs() < 1e-9);
    }

    #[test]
    fn irrelevant_table_goes_all_nr() {
        let p = pots(
            2,
            vec![vec![-0.3, -0.3, 0.0, 0.4], vec![-0.3, -0.3, 0.0, 0.4]],
        );
        let (labels, score) = solve_table(&p, 2);
        assert_eq!(labels, vec![Label::Nr, Label::Nr]);
        assert!((score - 0.8).abs() < 1e-9);
    }

    #[test]
    fn mutex_forces_second_best() {
        // Both columns prefer Q1; only one may take it; min-match=2 forces
        // the other to Q2.
        let p = pots(2, vec![vec![1.0, 0.2, 0.0, 0.0], vec![0.9, 0.3, 0.0, 0.0]]);
        let (labels, _) = solve_table(&p, 2);
        assert_eq!(labels, vec![Label::Col(0), Label::Col(1)]);
    }

    #[test]
    fn min_match_forces_na_limit() {
        // 3 columns, q=2, m=2: at most 1 na among relevant labelings.
        let p = pots(
            2,
            vec![
                vec![1.0, 0.1, 0.0, 0.0],
                vec![0.1, 0.05, 0.0, 0.0], // weak, would rather be na
                vec![0.2, 0.15, 0.0, 0.0],
            ],
        );
        let (labels, _) = solve_table(&p, 2);
        let non_na = labels.iter().filter(|&&l| l != Label::Na).count();
        assert!(non_na >= 2, "{labels:?}");
        assert!(labels.contains(&Label::Col(0)));
    }

    #[test]
    fn must_match_prefers_q1_even_when_weaker() {
        // Column 0 scores higher on Q2 than Q1, but a relevant table must
        // contain Q1: with min-match 1 and a single column, Q1 wins.
        let p = pots(2, vec![vec![0.5, 0.8, 0.0, 0.1]]);
        let (labels, _) = solve_table(&p, 1);
        assert_eq!(labels, vec![Label::Col(0)]);
    }

    #[test]
    fn relevant_vs_nr_decision_is_score_based() {
        // Strong nr pull: mapping scores 0.5, all-nr scores 0.6.
        let p = pots(1, vec![vec![0.5, 0.0, 0.6]]);
        let (labels, score) = solve_table(&p, 1);
        assert_eq!(labels, vec![Label::Nr]);
        assert!((score - 0.6).abs() < 1e-9);
        // Flip the balance.
        let p = pots(1, vec![vec![0.7, 0.0, 0.6]]);
        let (labels, _) = solve_table(&p, 1);
        assert_eq!(labels, vec![Label::Col(0)]);
    }

    #[test]
    fn single_column_table_with_multi_column_query() {
        // nt=1 < m=2: effective m capped by caller at 1; table can still be
        // relevant via Q1.
        let p = pots(3, vec![vec![1.0, 0.0, 0.0, 0.0, 0.05]]);
        let (labels, _) = solve_table(&p, 1);
        assert_eq!(labels, vec![Label::Col(0)]);
    }

    /// The pre-early-exit reference: always runs the full solve. The
    /// early exit must never change the answer — only skip work.
    fn solve_table_reference(p: &NodePotentials, m_eff: usize) -> (Vec<Label>, f64) {
        let all_nr = (vec![Label::Nr; p.n_cols()], p.all_nr_score());
        match best_relevant_labeling(p, m_eff) {
            Some((labels, score)) if score > all_nr.1 => (labels, score),
            _ => all_nr,
        }
    }

    #[test]
    fn early_exit_is_exact_against_full_solve() {
        // Deterministic pseudo-random instances spanning both sides of
        // the bound, including exact-tie and NEG_INFINITY rows.
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for case in 0..200 {
            let q = 1 + case % 3;
            let nt = 1 + (case / 3) % 4;
            let theta: Vec<Vec<f64>> = (0..nt)
                .map(|c| {
                    let mut row: Vec<f64> = (0..q).map(|_| next()).collect();
                    if case % 17 == 0 && c == 0 {
                        row[0] = f64::NEG_INFINITY;
                    }
                    row.push(0.0);
                    row.push(next().abs() * 0.5);
                    row
                })
                .collect();
            let p = pots(q, theta);
            for m_eff in 1..=q.min(nt) {
                let fast = solve_table(&p, m_eff);
                let reference = solve_table_reference(&p, m_eff);
                assert_eq!(fast.0, reference.0, "case {case} m={m_eff}");
                assert_eq!(
                    fast.1.to_bits(),
                    reference.1.to_bits(),
                    "case {case} m={m_eff}"
                );
            }
        }
    }

    #[test]
    fn best_relevant_none_when_infeasible() {
        // q=1, one column, but nt - m = 0 na slots and... actually with one
        // column and m=1 it is feasible; make Q1 forbidden instead.
        let p = pots(1, vec![vec![f64::NEG_INFINITY, 0.0, 0.3]]);
        assert!(best_relevant_labeling(&p, 1).is_none());
        let (labels, _) = solve_table(&p, 1);
        assert_eq!(labels, vec![Label::Nr]);
    }
}
