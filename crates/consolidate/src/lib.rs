//! # wwt-consolidate
//!
//! The consolidator and ranker of paper §2.2.3: merges the mapped columns
//! and rows of all relevant web tables into a single answer table, detects
//! duplicate rows across tables (standing in for the method of the
//! authors' earlier work, ref [9]), accumulates per-row support, and ranks
//! rows so that well-supported rows from highly relevant tables surface
//! first.

pub mod consolidator;
pub mod ranker;
pub mod row_metrics;

pub use consolidator::{consolidate, RelevantInput};
pub use ranker::rank_rows;
pub use row_metrics::row_set_error;
