//! Row merging across relevant tables.
//!
//! Rows from different tables are duplicates when their **key** — the
//! normalized value of the first query column — matches. Duplicate rows
//! merge cell-wise: empty cells fill from the newcomer; conflicting cells
//! keep the value from the more relevant source (ties keep the incumbent).

use crate::ranker::rank_rows;
use wwt_model::{AnswerRow, AnswerTable, Labeling, Query, WebTable};
use wwt_text::normalize_cell;

/// One relevant table with its column mapping and relevance score.
#[derive(Debug, Clone, Copy)]
pub struct RelevantInput<'a> {
    /// The source web table.
    pub table: &'a WebTable,
    /// Its column labeling (must be relevant: some `Col(_)` labels).
    pub labeling: &'a Labeling,
    /// Table relevance score in `[0,1]` (from the column mapper).
    pub relevance: f64,
}

/// Consolidates all relevant tables into one ranked answer table.
pub fn consolidate(query: &Query, inputs: &[RelevantInput<'_>]) -> AnswerTable {
    let q = query.q();
    let mut answer = AnswerTable::empty(query.columns.clone());
    // key -> index into answer.rows, parallel best-relevance per cell.
    let mut by_key: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    let mut cell_relevance: Vec<Vec<f64>> = Vec::new();

    for input in inputs {
        let Some(key_col) = input.labeling.column_for(0) else {
            continue; // must-match guarantees this for relevant tables
        };
        // Column of the table mapped to each query column.
        let col_of: Vec<Option<usize>> = (0..q).map(|l| input.labeling.column_for(l)).collect();
        for r in 0..input.table.n_rows() {
            let key = normalize_cell(input.table.cell(r, key_col));
            if key.is_empty() {
                continue;
            }
            let cells: Vec<String> = col_of
                .iter()
                .map(|c| {
                    c.map(|c| input.table.cell(r, c).trim().to_string())
                        .unwrap_or_default()
                })
                .collect();
            match by_key.get(&key) {
                None => {
                    by_key.insert(key, answer.rows.len());
                    cell_relevance.push(vec![input.relevance; q]);
                    answer
                        .rows
                        .push(AnswerRow::new(cells, input.table.id, input.relevance));
                }
                Some(&idx) => {
                    let row = &mut answer.rows[idx];
                    row.support += 1;
                    if !row.sources.contains(&input.table.id) {
                        row.sources.push(input.table.id);
                    }
                    for (l, cell) in cells.into_iter().enumerate() {
                        if cell.is_empty() {
                            continue;
                        }
                        let incumbent = &row.cells[l];
                        if incumbent.is_empty() || input.relevance > cell_relevance[idx][l] + 1e-12
                        {
                            row.cells[l] = cell;
                            cell_relevance[idx][l] = input.relevance;
                        }
                    }
                }
            }
        }
    }
    rank_rows(&mut answer, inputs.len());
    answer
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_model::{Label, TableId};

    fn table(id: u32, rows: Vec<Vec<&str>>) -> WebTable {
        WebTable::new(
            TableId(id),
            "u",
            None,
            vec![],
            rows.into_iter()
                .map(|r| r.into_iter().map(String::from).collect())
                .collect(),
            vec![],
        )
        .unwrap()
    }

    fn labeling(id: u32, labels: Vec<Label>) -> Labeling {
        Labeling::new(TableId(id), labels)
    }

    #[test]
    fn merges_duplicate_rows_and_counts_support() {
        let q = Query::parse("explorer | nationality").unwrap();
        let t1 = table(
            1,
            vec![
                vec!["Abel Tasman", "Dutch"],
                vec!["Vasco da Gama", "Portuguese"],
            ],
        );
        let l1 = labeling(1, vec![Label::Col(0), Label::Col(1)]);
        // Second table: swapped columns, overlapping row, one new row.
        let t2 = table(
            2,
            vec![
                vec!["Dutch", "Abel Tasman"],
                vec!["", "Christopher Columbus"],
            ],
        );
        let l2 = labeling(2, vec![Label::Col(1), Label::Col(0)]);
        let ans = consolidate(
            &q,
            &[
                RelevantInput {
                    table: &t1,
                    labeling: &l1,
                    relevance: 0.9,
                },
                RelevantInput {
                    table: &t2,
                    labeling: &l2,
                    relevance: 0.8,
                },
            ],
        );
        assert_eq!(ans.len(), 3);
        let tasman = ans
            .rows
            .iter()
            .find(|r| r.cells[0] == "Abel Tasman")
            .unwrap();
        assert_eq!(tasman.support, 2);
        assert_eq!(tasman.sources.len(), 2);
        assert_eq!(tasman.cells[1], "Dutch");
        let columbus = ans
            .rows
            .iter()
            .find(|r| r.cells[0] == "Christopher Columbus")
            .unwrap();
        assert_eq!(columbus.cells[1], "", "missing nationality stays empty");
    }

    #[test]
    fn key_normalization_merges_variants() {
        let q = Query::parse("country | currency").unwrap();
        let t1 = table(1, vec![vec!["  India ", "Rupee"]]);
        let t2 = table(2, vec![vec!["india", "Rupee"]]);
        let l = vec![Label::Col(0), Label::Col(1)];
        let ans = consolidate(
            &q,
            &[
                RelevantInput {
                    table: &t1,
                    labeling: &labeling(1, l.clone()),
                    relevance: 0.5,
                },
                RelevantInput {
                    table: &t2,
                    labeling: &labeling(2, l),
                    relevance: 0.5,
                },
            ],
        );
        assert_eq!(ans.len(), 1);
        assert_eq!(ans.rows[0].support, 2);
    }

    #[test]
    fn conflicts_resolved_by_relevance() {
        let q = Query::parse("country | population").unwrap();
        let low = table(1, vec![vec!["India", "900"]]);
        let high = table(2, vec![vec!["India", "1200"]]);
        let l = vec![Label::Col(0), Label::Col(1)];
        let ans = consolidate(
            &q,
            &[
                RelevantInput {
                    table: &low,
                    labeling: &labeling(1, l.clone()),
                    relevance: 0.3,
                },
                RelevantInput {
                    table: &high,
                    labeling: &labeling(2, l),
                    relevance: 0.9,
                },
            ],
        );
        assert_eq!(ans.rows[0].cells[1], "1200");
    }

    #[test]
    fn missing_query_columns_left_empty() {
        // Table maps only Q1 (single-column relevance); Q2 column empty.
        let q = Query::parse("mountain | height").unwrap();
        let t = table(1, vec![vec!["Denali", "x"]]);
        let l = labeling(1, vec![Label::Col(0), Label::Na]);
        let ans = consolidate(
            &q,
            &[RelevantInput {
                table: &t,
                labeling: &l,
                relevance: 0.7,
            }],
        );
        assert_eq!(ans.rows[0].cells, vec!["Denali".to_string(), String::new()]);
    }

    #[test]
    fn empty_inputs_empty_answer() {
        let q = Query::parse("a | b").unwrap();
        let ans = consolidate(&q, &[]);
        assert!(ans.is_empty());
        assert_eq!(ans.columns, vec!["a", "b"]);
    }

    #[test]
    fn empty_keys_skipped() {
        let q = Query::parse("name | value").unwrap();
        let t = table(1, vec![vec!["", "x"], vec!["ok", "y"]]);
        let l = labeling(1, vec![Label::Col(0), Label::Col(1)]);
        let ans = consolidate(
            &q,
            &[RelevantInput {
                table: &t,
                labeling: &l,
                relevance: 0.5,
            }],
        );
        assert_eq!(ans.len(), 1);
        assert_eq!(ans.rows[0].cells[0], "ok");
    }
}
