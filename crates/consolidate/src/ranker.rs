//! Row ranking (paper §2.2.3): "the ranker reorders the rows of the
//! consolidated table so as to bring more relevant and highly supported
//! rows on top".
//!
//! Score = (support fraction) × (best source relevance): a row confirmed by
//! many tables from relevant sources outranks a singleton from a marginal
//! source. Ties break on completeness (fewer empty cells first), then on
//! the key column for determinism.

use wwt_model::AnswerTable;

/// Ranks the rows of `answer` in place. `n_sources` is the number of
/// relevant tables that fed the consolidation (support normalizer).
pub fn rank_rows(answer: &mut AnswerTable, n_sources: usize) {
    let n = n_sources.max(1) as f64;
    for row in &mut answer.rows {
        let support_frac = f64::from(row.support) / n;
        let completeness = if row.cells.is_empty() {
            0.0
        } else {
            row.cells.iter().filter(|c| !c.is_empty()).count() as f64 / row.cells.len() as f64
        };
        // row.score was seeded with the best source relevance at insert.
        row.score = support_frac * row.score.max(1e-6) + 0.1 * completeness;
    }
    answer.rows.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.cells.cmp(&b.cells))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_model::{AnswerRow, TableId};

    fn row(cells: Vec<&str>, support: u32, relevance: f64) -> AnswerRow {
        let mut r = AnswerRow::new(
            cells.into_iter().map(String::from).collect(),
            TableId(0),
            relevance,
        );
        r.support = support;
        r
    }

    #[test]
    fn high_support_ranks_first() {
        let mut a = AnswerTable::empty(vec!["x".into()]);
        a.rows.push(row(vec!["lonely"], 1, 0.9));
        a.rows.push(row(vec!["popular"], 5, 0.9));
        rank_rows(&mut a, 5);
        assert_eq!(a.rows[0].cells[0], "popular");
    }

    #[test]
    fn relevance_breaks_equal_support() {
        let mut a = AnswerTable::empty(vec!["x".into()]);
        a.rows.push(row(vec!["weak"], 2, 0.2));
        a.rows.push(row(vec!["strong"], 2, 0.9));
        rank_rows(&mut a, 4);
        assert_eq!(a.rows[0].cells[0], "strong");
    }

    #[test]
    fn completeness_bonus() {
        let mut a = AnswerTable::empty(vec!["x".into(), "y".into()]);
        a.rows.push(row(vec!["a", ""], 1, 0.5));
        a.rows.push(row(vec!["b", "filled"], 1, 0.5));
        rank_rows(&mut a, 2);
        assert_eq!(a.rows[0].cells[0], "b");
    }

    #[test]
    fn deterministic_tie_break() {
        let mut a = AnswerTable::empty(vec!["x".into()]);
        a.rows.push(row(vec!["zeta"], 1, 0.5));
        a.rows.push(row(vec!["alpha"], 1, 0.5));
        rank_rows(&mut a, 2);
        assert_eq!(a.rows[0].cells[0], "alpha");
    }

    #[test]
    fn empty_table_is_fine() {
        let mut a = AnswerTable::empty(vec!["x".into()]);
        rank_rows(&mut a, 0);
        assert!(a.is_empty());
    }
}
