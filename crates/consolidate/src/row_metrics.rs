//! Answer-row quality (the metric behind paper Figure 6): the error
//! between the consolidated answer produced under a *predicted* column
//! mapping and the one produced under the *true* mapping.

use std::collections::HashMap;
use wwt_model::AnswerTable;
use wwt_text::normalize_cell;

/// F1-style error (percent) between the row multisets of two answer
/// tables. Rows are compared as tuples of normalized cell values.
pub fn row_set_error(predicted: &AnswerTable, reference: &AnswerTable) -> f64 {
    let a = row_multiset(predicted);
    let b = row_multiset(reference);
    let total_a: usize = a.values().sum();
    let total_b: usize = b.values().sum();
    if total_a + total_b == 0 {
        return 0.0;
    }
    let mut inter = 0usize;
    for (row, &ca) in &a {
        if let Some(&cb) = b.get(row) {
            inter += ca.min(cb);
        }
    }
    100.0 - 200.0 * inter as f64 / (total_a + total_b) as f64
}

fn row_multiset(t: &AnswerTable) -> HashMap<String, usize> {
    let mut m = HashMap::new();
    for row in &t.rows {
        let key = row
            .cells
            .iter()
            .map(|c| normalize_cell(c))
            .collect::<Vec<_>>()
            .join("\u{1f}");
        *m.entry(key).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_model::{AnswerRow, TableId};

    fn table(rows: Vec<Vec<&str>>) -> AnswerTable {
        let mut t = AnswerTable::empty(vec!["a".into(), "b".into()]);
        for r in rows {
            t.rows.push(AnswerRow::new(
                r.into_iter().map(String::from).collect(),
                TableId(0),
                0.0,
            ));
        }
        t
    }

    #[test]
    fn identical_tables_zero_error() {
        let t = table(vec![vec!["x", "1"], vec!["y", "2"]]);
        assert_eq!(row_set_error(&t, &t), 0.0);
    }

    #[test]
    fn disjoint_tables_full_error() {
        let a = table(vec![vec!["x", "1"]]);
        let b = table(vec![vec!["z", "9"]]);
        assert_eq!(row_set_error(&a, &b), 100.0);
    }

    #[test]
    fn partial_overlap() {
        let a = table(vec![vec!["x", "1"], vec!["y", "2"]]);
        let b = table(vec![vec!["x", "1"]]);
        // intersection 1, sizes 2+1: error = 100 - 200/3.
        assert!((row_set_error(&a, &b) - (100.0 - 200.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn normalization_ignores_case_and_spacing() {
        let a = table(vec![vec!["  India ", "Rupee"]]);
        let b = table(vec![vec!["india", "rupee"]]);
        assert_eq!(row_set_error(&a, &b), 0.0);
    }

    #[test]
    fn both_empty_is_perfect() {
        let a = table(vec![]);
        assert_eq!(row_set_error(&a, &a), 0.0);
    }

    #[test]
    fn order_does_not_matter() {
        let a = table(vec![vec!["x", "1"], vec!["y", "2"]]);
        let b = table(vec![vec!["y", "2"], vec!["x", "1"]]);
        assert_eq!(row_set_error(&a, &b), 0.0);
    }
}
