//! Per-stage latency histograms: a fixed stage set × 12 microsecond
//! buckets, all `AtomicU64`, rendered as one Prometheus histogram
//! family `wwt_stage_duration_us{stage=...}`.
//!
//! Observation is a single first-fitting-bucket scan plus three relaxed
//! atomic increments — cheap enough to run on every query, fed from the
//! `StageTimings` the engine already measures (no extra clock reads).

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket upper bounds in microseconds. Chosen around the bench
/// trajectory: cold-query median ≈ 900 µs, dominant stage (column map)
/// 50 µs – 3.5 ms, tails up to the deadline range.
pub const STAGE_BUCKET_BOUNDS_US: [u64; 12] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
];

/// The instrumented pipeline stages (the `stage` label values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// First index probe (scatter-gather over shards).
    Probe1,
    /// Reading stage-1 candidate tables from the store.
    Read1,
    /// Second index probe, seeded by high-relevance mappings.
    Probe2,
    /// Reading stage-2 candidate tables from the store.
    Read2,
    /// Column mapping (the dominant cost).
    ColumnMap,
    /// Answer consolidation and ranking.
    Consolidate,
    /// Response-cache lookup in the service layer.
    CacheLookup,
    /// Wire serialization of the response body.
    Serialize,
}

impl Stage {
    /// Every stage, in render order.
    pub const ALL: [Stage; 8] = [
        Stage::Probe1,
        Stage::Read1,
        Stage::Probe2,
        Stage::Read2,
        Stage::ColumnMap,
        Stage::Consolidate,
        Stage::CacheLookup,
        Stage::Serialize,
    ];

    /// The Prometheus `stage` label value.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Probe1 => "probe1",
            Stage::Read1 => "read1",
            Stage::Probe2 => "probe2",
            Stage::Read2 => "read2",
            Stage::ColumnMap => "column_map",
            Stage::Consolidate => "consolidate",
            Stage::CacheLookup => "cache_lookup",
            Stage::Serialize => "serialize",
        }
    }
}

#[derive(Debug, Default)]
struct StageHist {
    buckets: [AtomicU64; STAGE_BUCKET_BOUNDS_US.len()],
    sum_us: AtomicU64,
    count: AtomicU64,
}

/// The full per-stage histogram family.
#[derive(Debug, Default)]
pub struct StageHistograms {
    stages: [StageHist; Stage::ALL.len()],
}

impl StageHistograms {
    /// An empty family (all counters zero).
    pub fn new() -> Self {
        StageHistograms::default()
    }

    /// Records one stage duration in microseconds.
    pub fn observe(&self, stage: Stage, us: u64) {
        let hist = &self.stages[stage as usize];
        if let Some(bucket) = STAGE_BUCKET_BOUNDS_US.iter().position(|&bound| us <= bound) {
            hist.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        }
        hist.sum_us.fetch_add(us, Ordering::Relaxed);
        hist.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations for one stage (tests, /stats).
    pub fn count(&self, stage: Stage) -> u64 {
        self.stages[stage as usize].count.load(Ordering::Relaxed)
    }

    /// Appends the family in Prometheus text exposition format 0.0.4.
    ///
    /// Buckets render cumulatively per Prometheus histogram semantics;
    /// `+Inf` equals `_count`, so observations beyond the last bound
    /// are still counted.
    pub fn render_prometheus(&self, out: &mut String) {
        out.push_str(
            "# HELP wwt_stage_duration_us Query pipeline stage duration in microseconds.\n",
        );
        out.push_str("# TYPE wwt_stage_duration_us histogram\n");
        for stage in Stage::ALL {
            let hist = &self.stages[stage as usize];
            let label = stage.label();
            let mut cumulative = 0u64;
            for (i, bound) in STAGE_BUCKET_BOUNDS_US.iter().enumerate() {
                cumulative += hist.buckets[i].load(Ordering::Relaxed);
                out.push_str(&format!(
                    "wwt_stage_duration_us_bucket{{stage=\"{label}\",le=\"{bound}\"}} {cumulative}\n"
                ));
            }
            let count = hist.count.load(Ordering::Relaxed);
            out.push_str(&format!(
                "wwt_stage_duration_us_bucket{{stage=\"{label}\",le=\"+Inf\"}} {count}\n"
            ));
            out.push_str(&format!(
                "wwt_stage_duration_us_sum{{stage=\"{label}\"}} {}\n",
                hist.sum_us.load(Ordering::Relaxed)
            ));
            out.push_str(&format!(
                "wwt_stage_duration_us_count{{stage=\"{label}\"}} {count}\n"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_lands_in_first_fitting_bucket() {
        let h = StageHistograms::new();
        h.observe(Stage::Probe1, 50); // boundary: le="50" includes 50
        h.observe(Stage::Probe1, 51);
        h.observe(Stage::Probe1, 300_000); // beyond last bound: +Inf only
        assert_eq!(h.count(Stage::Probe1), 3);
        let mut out = String::new();
        h.render_prometheus(&mut out);
        assert!(out.contains(r#"wwt_stage_duration_us_bucket{stage="probe1",le="50"} 1"#));
        assert!(out.contains(r#"wwt_stage_duration_us_bucket{stage="probe1",le="100"} 2"#));
        assert!(out.contains(r#"wwt_stage_duration_us_bucket{stage="probe1",le="250000"} 2"#));
        assert!(out.contains(r#"wwt_stage_duration_us_bucket{stage="probe1",le="+Inf"} 3"#));
        assert!(out.contains(r#"wwt_stage_duration_us_sum{stage="probe1"} 300101"#));
        assert!(out.contains(r#"wwt_stage_duration_us_count{stage="probe1"} 3"#));
    }

    #[test]
    fn every_stage_renders_even_when_empty() {
        let h = StageHistograms::new();
        let mut out = String::new();
        h.render_prometheus(&mut out);
        for stage in Stage::ALL {
            assert!(
                out.contains(&format!(
                    "wwt_stage_duration_us_count{{stage=\"{}\"}} 0",
                    stage.label()
                )),
                "missing series for {stage:?}"
            );
        }
        // One HELP/TYPE pair for the whole family.
        assert_eq!(out.matches("# TYPE wwt_stage_duration_us").count(), 1);
    }

    #[test]
    fn buckets_are_cumulative_and_monotone() {
        let h = StageHistograms::new();
        for us in [10, 60, 120, 260, 600, 1200, 9_999, 240_000] {
            h.observe(Stage::ColumnMap, us);
        }
        let mut out = String::new();
        h.render_prometheus(&mut out);
        let mut last = 0u64;
        for line in out
            .lines()
            .filter(|l| l.contains(r#"stage="column_map",le="#))
        {
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(n >= last, "non-monotone cumulative buckets: {out}");
            last = n;
        }
        assert_eq!(last, 8);
    }
}
