//! # wwt-obs
//!
//! std-only observability primitives shared by the engine, service and
//! server layers. Four pieces, none of which costs anything on the hot
//! path when it is switched off:
//!
//! | piece | what it does |
//! |---|---|
//! | [`Trace`] | request-scoped span tree + notes; a **disabled** handle is a no-op that never reads the clock or allocates |
//! | [`StageHistograms`] | fixed-stage 12-bucket latency histograms (`wwt_stage_duration_us{stage=...}`), atomic increments only |
//! | [`FlightRecorder`] | lock-striped ring buffers keeping the N slowest + N most recent query traces, plus anomaly capture |
//! | [`log!`] | leveled, optionally-JSON, request-id-stamped one-line logging to stderr |
//!
//! The crate depends only on `std` and the workspace's hand-rolled JSON
//! codec (`wwt-json`), so every layer — including the engine — can take
//! it without pulling in serving concerns.

mod histogram;
mod log;
mod recorder;
mod trace;

pub use histogram::{Stage, StageHistograms, STAGE_BUCKET_BOUNDS_US};
pub use log::{log_enabled, log_event, log_json, log_level, set_log_json, set_log_level, LogLevel};
pub use recorder::{FlightRecord, FlightRecorder, QueryOutcome, RecorderConfig, RecorderCounters};
pub use trace::{SpanRecord, Trace, TraceReport};
