//! Structured leveled logging: one line per event on stderr, plain or
//! JSON, filtered by a process-global level, optionally stamped with
//! the request id of the query being served.
//!
//! Deliberately tiny — no registries, no targets hierarchy. The
//! [`log!`] macro guards on [`log_enabled`] *before* formatting its
//! arguments, so suppressed levels cost one relaxed atomic load.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use wwt_json::Json;

/// Severity, most to least severe. The global filter admits events at
/// or above the configured level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum LogLevel {
    /// Something failed and the operator should know.
    Error = 0,
    /// Degraded but serving.
    Warn = 1,
    /// Lifecycle events (startup, reload, compaction). The default.
    Info = 2,
    /// Per-request noise for debugging sessions.
    Debug = 3,
}

impl LogLevel {
    /// Stable lowercase name (`"info"`, …).
    pub fn label(self) -> &'static str {
        match self {
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }

    /// Parses a case-insensitive level name.
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(LogLevel::Error),
            "warn" | "warning" => Some(LogLevel::Warn),
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            _ => None,
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(LogLevel::Info as u8);
static JSON: AtomicBool = AtomicBool::new(false);

/// Sets the process-global level filter.
pub fn set_log_level(level: LogLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current level filter.
pub fn log_level() -> LogLevel {
    match LEVEL.load(Ordering::Relaxed) {
        0 => LogLevel::Error,
        1 => LogLevel::Warn,
        2 => LogLevel::Info,
        _ => LogLevel::Debug,
    }
}

/// Switches between plain (`[target] message`) and JSON lines.
pub fn set_log_json(on: bool) {
    JSON.store(on, Ordering::Relaxed);
}

/// Whether JSON lines are enabled.
pub fn log_json() -> bool {
    JSON.load(Ordering::Relaxed)
}

/// Whether an event at `level` would be emitted.
pub fn log_enabled(level: LogLevel) -> bool {
    (level as u8) <= LEVEL.load(Ordering::Relaxed)
}

/// Emits one event line to stderr (already-formatted message). Prefer
/// the [`log!`] macro, which skips formatting for suppressed levels.
pub fn log_event(level: LogLevel, target: &str, request_id: Option<&str>, message: &str) {
    if !log_enabled(level) {
        return;
    }
    let line = if log_json() {
        let mut fields = vec![
            ("level".to_string(), Json::from(level.label())),
            ("target".to_string(), Json::from(target)),
            ("msg".to_string(), Json::from(message)),
        ];
        if let Some(id) = request_id {
            fields.push(("request_id".to_string(), Json::from(id)));
        }
        Json::Obj(fields).encode()
    } else {
        // Info keeps the historical `[target] message` shape the
        // serve binary always printed; other levels carry their name.
        let prefix = match level {
            LogLevel::Info => String::new(),
            other => format!("{}: ", other.label()),
        };
        match request_id {
            Some(id) => format!("[{target}] {prefix}{message} (request_id={id})"),
            None => format!("[{target}] {prefix}{message}"),
        }
    };
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "{line}");
}

/// Logs one event: `log!(LogLevel::Info, "wwt-serve", "up on {addr}")`,
/// or with a request id:
/// `log!(LogLevel::Debug, "wwt-server", id = rid; "answered")`.
#[macro_export]
macro_rules! log {
    ($level:expr, $target:expr, id = $id:expr; $($arg:tt)*) => {
        if $crate::log_enabled($level) {
            $crate::log_event($level, $target, Some(&$id), &format!($($arg)*));
        }
    };
    ($level:expr, $target:expr, $($arg:tt)*) => {
        if $crate::log_enabled($level) {
            $crate::log_event($level, $target, None, &format!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(LogLevel::parse("INFO"), Some(LogLevel::Info));
        assert_eq!(LogLevel::parse("warning"), Some(LogLevel::Warn));
        assert_eq!(LogLevel::parse("nope"), None);
        assert!(LogLevel::Error < LogLevel::Debug);
    }

    #[test]
    fn filter_is_inclusive_of_more_severe_levels() {
        // Note: the filter statics are process-global; this test owns
        // them transiently and restores the default.
        set_log_level(LogLevel::Warn);
        assert!(log_enabled(LogLevel::Error));
        assert!(log_enabled(LogLevel::Warn));
        assert!(!log_enabled(LogLevel::Info));
        assert!(!log_enabled(LogLevel::Debug));
        set_log_level(LogLevel::Info);
        assert_eq!(log_level(), LogLevel::Info);
    }
}
