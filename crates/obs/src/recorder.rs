//! The slow-query flight recorder: fixed-size, lock-striped ring
//! buffers capturing full [`TraceReport`]s for the N slowest and N most
//! recent queries, plus a dedicated buffer for anomalies (every
//! deadline-exceeded and zero-result query, bounded retention —
//! counters track the unbounded totals).
//!
//! Writers take exactly one striped mutex per record (stripe chosen by
//! sequence number, so load spreads evenly); readers merge across
//! stripes. The **strict-slowest invariant** holds under any
//! interleaving: each stripe retains its own top-`slowest` records by
//! duration, and since every record lands in exactly one stripe, the
//! global top-`slowest` is a subset of the union the reader merges.

use crate::trace::TraceReport;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use wwt_json::Json;

/// Capacity knobs for [`FlightRecorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderConfig {
    /// How many slowest queries to retain (globally).
    pub slowest: usize,
    /// How many most-recent queries to retain (globally).
    pub recent: usize,
    /// Lock stripes; writers on different stripes never contend.
    pub stripes: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            slowest: 16,
            recent: 16,
            stripes: 8,
        }
    }
}

/// How a recorded query ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Answered with at least one row.
    Ok,
    /// Answered, but with an empty table.
    ZeroResults,
    /// Tripped its deadline budget.
    DeadlineExceeded,
    /// Failed with any other engine error.
    Error,
}

impl QueryOutcome {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            QueryOutcome::Ok => "ok",
            QueryOutcome::ZeroResults => "zero_results",
            QueryOutcome::DeadlineExceeded => "deadline_exceeded",
            QueryOutcome::Error => "error",
        }
    }

    fn is_anomaly(self) -> bool {
        !matches!(self, QueryOutcome::Ok)
    }
}

/// One captured query: identity, outcome, and its full stage trace.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Recorder-assigned monotone sequence number (1-based).
    pub seq: u64,
    /// The query's `x-request-id`.
    pub request_id: String,
    /// The query text.
    pub query: String,
    /// End-to-end duration in microseconds.
    pub duration_us: u64,
    /// How the query ended.
    pub outcome: QueryOutcome,
    /// Engine generation the query ran against.
    pub generation: u64,
    /// Rows in the answer (0 for errors).
    pub rows: usize,
    /// The stage-level trace.
    pub trace: TraceReport,
}

impl FlightRecord {
    /// The wire form served by `/debug/slow_queries` and
    /// `/debug/trace/{request_id}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seq", Json::from(self.seq)),
            ("request_id", Json::from(self.request_id.as_str())),
            ("query", Json::from(self.query.as_str())),
            ("duration_us", Json::from(self.duration_us)),
            ("outcome", Json::from(self.outcome.label())),
            ("generation", Json::from(self.generation)),
            ("rows", Json::from(self.rows)),
            ("trace", self.trace.to_json()),
        ])
    }
}

/// Monotone counters over everything ever recorded (not just retained).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecorderCounters {
    /// Total queries recorded.
    pub recorded: u64,
    /// Total deadline-exceeded queries seen.
    pub deadline_exceeded: u64,
    /// Total zero-result queries seen.
    pub zero_results: u64,
}

#[derive(Debug, Default)]
struct Stripe {
    /// Sorted slowest-first by `(duration_us desc, seq asc)`.
    slowest: Vec<FlightRecord>,
    recent: VecDeque<FlightRecord>,
    anomalies: VecDeque<FlightRecord>,
}

/// The recorder itself; shared behind the service layer.
#[derive(Debug)]
pub struct FlightRecorder {
    config: RecorderConfig,
    stripes: Vec<Mutex<Stripe>>,
    seq: AtomicU64,
    recorded: AtomicU64,
    deadline_exceeded: AtomicU64,
    zero_results: AtomicU64,
}

/// Slowest-first total order: longer duration wins, earlier sequence
/// breaks ties (deterministic under concurrency tests).
fn slower(a: &FlightRecord, b: &FlightRecord) -> std::cmp::Ordering {
    b.duration_us.cmp(&a.duration_us).then(a.seq.cmp(&b.seq))
}

impl FlightRecorder {
    /// A recorder with the given capacities (stripes clamped to ≥ 1).
    pub fn new(config: RecorderConfig) -> Self {
        let stripes = config.stripes.max(1);
        FlightRecorder {
            config,
            stripes: (0..stripes)
                .map(|_| Mutex::new(Stripe::default()))
                .collect(),
            seq: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            zero_results: AtomicU64::new(0),
        }
    }

    /// The configured capacities.
    pub fn config(&self) -> RecorderConfig {
        self.config
    }

    /// Captures one query; assigns and returns its sequence number.
    /// `record.seq` on input is ignored.
    pub fn record(&self, mut record: FlightRecord) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        record.seq = seq;
        self.recorded.fetch_add(1, Ordering::Relaxed);
        match record.outcome {
            QueryOutcome::DeadlineExceeded => {
                self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            }
            QueryOutcome::ZeroResults => {
                self.zero_results.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }

        let stripe = &self.stripes[(seq as usize) % self.stripes.len()];
        let mut s = stripe.lock().unwrap();
        if self.config.recent > 0 {
            if s.recent.len() == self.config.recent {
                s.recent.pop_front();
            }
            s.recent.push_back(record.clone());
        }
        if record.outcome.is_anomaly() {
            let cap = self.config.recent.max(self.config.slowest);
            if cap > 0 {
                if s.anomalies.len() == cap {
                    s.anomalies.pop_front();
                }
                s.anomalies.push_back(record.clone());
            }
        }
        if self.config.slowest > 0 {
            let keep = s.slowest.len() < self.config.slowest
                || slower(&record, s.slowest.last().unwrap()).is_lt();
            if keep {
                let at = s.slowest.partition_point(|r| slower(r, &record).is_lt());
                s.slowest.insert(at, record);
                s.slowest.truncate(self.config.slowest);
            }
        }
        seq
    }

    /// The strict global top-`slowest` records, slowest first.
    pub fn slowest(&self) -> Vec<FlightRecord> {
        let mut all: Vec<FlightRecord> = self
            .stripes
            .iter()
            .flat_map(|s| s.lock().unwrap().slowest.clone())
            .collect();
        all.sort_by(slower);
        all.truncate(self.config.slowest);
        all
    }

    /// The most recent records, newest first.
    pub fn recent(&self) -> Vec<FlightRecord> {
        let mut all: Vec<FlightRecord> = self
            .stripes
            .iter()
            .flat_map(|s| s.lock().unwrap().recent.iter().cloned().collect::<Vec<_>>())
            .collect();
        all.sort_by_key(|r| std::cmp::Reverse(r.seq));
        all.truncate(self.config.recent);
        all
    }

    /// Recently retained anomalies (deadline-exceeded / zero-result),
    /// newest first.
    pub fn anomalies(&self) -> Vec<FlightRecord> {
        let mut all: Vec<FlightRecord> = self
            .stripes
            .iter()
            .flat_map(|s| {
                s.lock()
                    .unwrap()
                    .anomalies
                    .iter()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_by_key(|r| std::cmp::Reverse(r.seq));
        all
    }

    /// The newest retained record with the given request id, searching
    /// every buffer.
    pub fn find(&self, request_id: &str) -> Option<FlightRecord> {
        let mut best: Option<FlightRecord> = None;
        for stripe in &self.stripes {
            let s = stripe.lock().unwrap();
            for r in s
                .slowest
                .iter()
                .chain(s.recent.iter())
                .chain(s.anomalies.iter())
            {
                if r.request_id == request_id && best.as_ref().is_none_or(|b| r.seq > b.seq) {
                    best = Some(r.clone());
                }
            }
        }
        best
    }

    /// Monotone totals for `/stats` and `/metrics`.
    pub fn counters(&self) -> RecorderCounters {
        RecorderCounters {
            recorded: self.recorded.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            zero_results: self.zero_results.load(Ordering::Relaxed),
        }
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(RecorderConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: &str, us: u64, outcome: QueryOutcome) -> FlightRecord {
        FlightRecord {
            seq: 0,
            request_id: id.to_string(),
            query: format!("q {id}"),
            duration_us: us,
            outcome,
            generation: 0,
            rows: if outcome == QueryOutcome::Ok { 1 } else { 0 },
            trace: TraceReport::default(),
        }
    }

    #[test]
    fn slowest_is_strict_top_n_across_stripes() {
        let r = FlightRecorder::new(RecorderConfig {
            slowest: 4,
            recent: 2,
            stripes: 3,
        });
        let durations = [5u64, 900, 30, 700, 30, 1, 800, 650, 2, 40];
        for (i, us) in durations.iter().enumerate() {
            r.record(rec(&format!("r{i}"), *us, QueryOutcome::Ok));
        }
        let got: Vec<u64> = r.slowest().into_iter().map(|x| x.duration_us).collect();
        assert_eq!(got, vec![900, 800, 700, 650]);
    }

    #[test]
    fn recent_keeps_newest_in_order() {
        let r = FlightRecorder::new(RecorderConfig {
            slowest: 2,
            recent: 3,
            stripes: 2,
        });
        for i in 0..10u64 {
            r.record(rec(&format!("r{i}"), i, QueryOutcome::Ok));
        }
        let ids: Vec<String> = r.recent().into_iter().map(|x| x.request_id).collect();
        assert_eq!(ids, vec!["r9", "r8", "r7"]);
    }

    #[test]
    fn ties_resolve_by_earlier_sequence() {
        let r = FlightRecorder::new(RecorderConfig {
            slowest: 2,
            recent: 0,
            stripes: 1,
        });
        for id in ["a", "b", "c"] {
            r.record(rec(id, 100, QueryOutcome::Ok));
        }
        let ids: Vec<String> = r.slowest().into_iter().map(|x| x.request_id).collect();
        assert_eq!(ids, vec!["a", "b"]);
    }

    #[test]
    fn anomalies_and_counters_capture_failures() {
        let r = FlightRecorder::new(RecorderConfig::default());
        r.record(rec("ok", 10, QueryOutcome::Ok));
        r.record(rec("zero", 20, QueryOutcome::ZeroResults));
        r.record(rec("dead", 30, QueryOutcome::DeadlineExceeded));
        r.record(rec("err", 40, QueryOutcome::Error));
        let counters = r.counters();
        assert_eq!(counters.recorded, 4);
        assert_eq!(counters.deadline_exceeded, 1);
        assert_eq!(counters.zero_results, 1);
        let ids: Vec<String> = r.anomalies().into_iter().map(|x| x.request_id).collect();
        assert_eq!(ids, vec!["err", "dead", "zero"]);
    }

    #[test]
    fn find_returns_newest_match() {
        let r = FlightRecorder::new(RecorderConfig::default());
        r.record(rec("dup", 10, QueryOutcome::Ok));
        let seq2 = r.record(rec("dup", 99, QueryOutcome::Ok));
        assert_eq!(r.find("dup").unwrap().seq, seq2);
        assert!(r.find("missing").is_none());
    }

    #[test]
    fn record_json_round_trips_through_the_codec() {
        let mut record = rec("wire", 123, QueryOutcome::ZeroResults);
        record.trace.request_id = "wire".into();
        let encoded = record.to_json().encode();
        let parsed = wwt_json::Json::parse(&encoded).unwrap();
        assert_eq!(
            parsed.get("outcome").unwrap().as_str(),
            Some("zero_results")
        );
        assert_eq!(parsed.get("duration_us").unwrap().as_u64(), Some(123));
        assert!(parsed.get("trace").unwrap().get("spans").is_some());
    }
}
