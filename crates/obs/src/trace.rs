//! Request-scoped tracing: a cheap cloneable [`Trace`] handle records a
//! span tree (one span per pipeline stage, child spans per shard or
//! batch) plus key/value notes, and snapshots into a [`TraceReport`].
//!
//! The disabled handle holds no allocation and every method on it
//! returns immediately without reading the clock — mirroring
//! `Deadline::none()` — so threading a `&Trace` through the query
//! pipeline is free unless a caller opted in. Callers that would have
//! to *format* a note value must guard on [`Trace::is_enabled`] so the
//! formatting itself is skipped too.

use std::sync::{Arc, Mutex};
use std::time::Duration;
use wwt_json::Json;

/// One completed span: a named stage with a wall-clock duration,
/// optional key/value detail, and child spans (per-shard probes,
/// per-view column-map batches).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stage name (`"probe1"`, `"column_map"`, `"shard0"`, …).
    pub name: String,
    /// Measured wall-clock duration in microseconds.
    pub duration_us: u64,
    /// Key/value annotations scoped to this span.
    pub detail: Vec<(String, String)>,
    /// Child spans, in completion order.
    pub children: Vec<SpanRecord>,
}

impl SpanRecord {
    /// A leaf span with no detail.
    pub fn new(name: impl Into<String>, duration: Duration) -> Self {
        SpanRecord {
            name: name.into(),
            duration_us: duration.as_micros() as u64,
            detail: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Appends one key/value annotation (builder style).
    pub fn with_detail(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.detail.push((key.into(), value.into()));
        self
    }

    /// Appends one child span (builder style).
    pub fn with_child(mut self, child: SpanRecord) -> Self {
        self.children.push(child);
        self
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".to_string(), Json::from(self.name.as_str())),
            ("duration_us".to_string(), Json::from(self.duration_us)),
        ];
        if !self.detail.is_empty() {
            fields.push((
                "detail".to_string(),
                Json::Obj(
                    self.detail
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(v.as_str())))
                        .collect(),
                ),
            ));
        }
        if !self.children.is_empty() {
            fields.push((
                "children".to_string(),
                Json::arr(self.children.iter().map(|c| c.to_json())),
            ));
        }
        Json::Obj(fields)
    }

    fn zero_timings(&mut self) {
        self.duration_us = 0;
        for child in &mut self.children {
            child.zero_timings();
        }
    }
}

/// A finished trace: everything a query did, with timings.
///
/// Structure (names, notes, span tree shape) is deterministic for a
/// given request against a given engine generation; only the
/// `*_us` fields vary run to run — [`TraceReport::zero_timings`]
/// normalizes them away for byte-stability tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceReport {
    /// The request id this trace belongs to (client-supplied or
    /// server-generated `x-request-id`).
    pub request_id: String,
    /// End-to-end duration in microseconds.
    pub total_us: u64,
    /// Top-level spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Trace-level key/value notes, in insertion order.
    pub notes: Vec<(String, String)>,
}

impl TraceReport {
    /// The wire form of this trace (insertion-ordered, deterministic).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("request_id", Json::from(self.request_id.as_str())),
            ("total_us", Json::from(self.total_us)),
            ("spans", Json::arr(self.spans.iter().map(|s| s.to_json()))),
            (
                "notes",
                Json::Obj(
                    self.notes
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(v.as_str())))
                        .collect(),
                ),
            ),
        ])
    }

    /// Zeroes every duration, recursively — traces of the same request
    /// then compare (and encode) byte-identically run to run.
    pub fn zero_timings(&mut self) {
        self.total_us = 0;
        for span in &mut self.spans {
            span.zero_timings();
        }
    }
}

#[derive(Debug, Default)]
struct TraceState {
    spans: Vec<SpanRecord>,
    notes: Vec<(String, String)>,
}

#[derive(Debug)]
struct TraceInner {
    request_id: String,
    state: Mutex<TraceState>,
}

/// The recording handle threaded through the query pipeline.
///
/// Clones share the same underlying record. [`Trace::disabled`] is the
/// zero-cost form: `None` inside, so every record method is a branch
/// and a return.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    inner: Option<Arc<TraceInner>>,
}

impl Trace {
    /// The no-op handle: records nothing, costs nothing.
    pub fn disabled() -> Self {
        Trace { inner: None }
    }

    /// A live handle recording under the given request id.
    pub fn enabled(request_id: impl Into<String>) -> Self {
        Trace {
            inner: Some(Arc::new(TraceInner {
                request_id: request_id.into(),
                state: Mutex::new(TraceState::default()),
            })),
        }
    }

    /// Whether this handle records anything. Guard note *construction*
    /// (formatting, counting) on this so disabled traces skip it.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The request id, when enabled.
    pub fn request_id(&self) -> Option<&str> {
        self.inner.as_ref().map(|i| i.request_id.as_str())
    }

    /// Records a completed leaf span from an already-measured duration.
    pub fn span(&self, name: &str, duration: Duration) {
        if let Some(inner) = &self.inner {
            let mut state = inner.state.lock().unwrap();
            state.spans.push(SpanRecord::new(name, duration));
        }
    }

    /// Records a completed span built by the caller (children, detail).
    pub fn push_span(&self, span: SpanRecord) {
        if let Some(inner) = &self.inner {
            inner.state.lock().unwrap().spans.push(span);
        }
    }

    /// Records a trace-level key/value note.
    pub fn note(&self, key: &str, value: impl Into<String>) {
        if let Some(inner) = &self.inner {
            let mut state = inner.state.lock().unwrap();
            state.notes.push((key.to_string(), value.into()));
        }
    }

    /// Snapshots the record into a report; `None` when disabled.
    pub fn finish(&self, total: Duration) -> Option<TraceReport> {
        self.inner.as_ref().map(|inner| {
            let state = inner.state.lock().unwrap();
            TraceReport {
                request_id: inner.request_id.clone(),
                total_us: total.as_micros() as u64,
                spans: state.spans.clone(),
                notes: state.notes.clone(),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let trace = Trace::disabled();
        assert!(!trace.is_enabled());
        assert_eq!(trace.request_id(), None);
        trace.span("probe1", Duration::from_micros(10));
        trace.note("k", "v");
        assert_eq!(trace.finish(Duration::from_micros(99)), None);
    }

    #[test]
    fn enabled_trace_preserves_order_and_structure() {
        let trace = Trace::enabled("req-1");
        trace.span("probe1", Duration::from_micros(100));
        trace.push_span(
            SpanRecord::new("column_map", Duration::from_micros(900))
                .with_detail("views", "3")
                .with_child(SpanRecord::new("view:7", Duration::from_micros(400))),
        );
        trace.note("candidates", "12");
        let report = trace.finish(Duration::from_micros(1100)).unwrap();
        assert_eq!(report.request_id, "req-1");
        assert_eq!(report.total_us, 1100);
        assert_eq!(report.spans.len(), 2);
        assert_eq!(report.spans[1].children[0].name, "view:7");
        assert_eq!(report.notes, vec![("candidates".into(), "12".into())]);
    }

    #[test]
    fn clones_share_one_record() {
        let trace = Trace::enabled("shared");
        let clone = trace.clone();
        clone.span("probe1", Duration::from_micros(5));
        let report = trace.finish(Duration::ZERO).unwrap();
        assert_eq!(report.spans.len(), 1);
    }

    #[test]
    fn zero_timings_makes_reports_comparable() {
        let make = |us: u64| {
            let trace = Trace::enabled("r");
            trace.push_span(
                SpanRecord::new("probe1", Duration::from_micros(us))
                    .with_child(SpanRecord::new("shard0", Duration::from_micros(us / 2))),
            );
            trace.finish(Duration::from_micros(us * 2)).unwrap()
        };
        let (mut a, mut b) = (make(100), make(250));
        assert_ne!(a, b);
        a.zero_timings();
        b.zero_timings();
        assert_eq!(a, b);
        assert_eq!(a.to_json().encode(), b.to_json().encode());
    }

    #[test]
    fn report_json_is_insertion_ordered() {
        let trace = Trace::enabled("id-9");
        trace.span("probe1", Duration::from_micros(3));
        trace.note("cache", "miss");
        let json = trace.finish(Duration::from_micros(7)).unwrap().to_json();
        assert_eq!(
            json.encode(),
            r#"{"request_id":"id-9","total_us":7,"spans":[{"name":"probe1","duration_us":3}],"notes":{"cache":"miss"}}"#
        );
    }
}
