//! Property test: the flight recorder's strict-slowest invariant holds
//! under concurrent writers. Each case draws a random duration stream,
//! splits it across four threads recording simultaneously, then checks
//! that `slowest()` is exactly the top-N durations of the whole stream
//! — no record lost to striping or interleaving.

use proptest::prelude::ProptestConfig;
use std::sync::Arc;
use std::thread;
use wwt_obs::{FlightRecord, FlightRecorder, QueryOutcome, RecorderConfig, TraceReport};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn record(id: String, us: u64, outcome: QueryOutcome) -> FlightRecord {
    FlightRecord {
        seq: 0,
        request_id: id,
        query: "q".to_string(),
        duration_us: us,
        outcome,
        generation: 1,
        rows: 1,
        trace: TraceReport::default(),
    }
}

proptest::proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_writers_never_lose_the_strict_slowest_invariant(
        n in 1usize..160,
        slowest in 1usize..9,
        stripes in 1usize..6,
        salt in 0u64..1_000_000,
    ) {
        let mut state = salt ^ 0xA5A5_5A5A_DEAD_BEEF;
        // Low modulus forces duplicate durations, exercising tie-breaks.
        let durations: Vec<u64> = (0..n).map(|_| splitmix(&mut state) % 97).collect();

        let recorder = Arc::new(FlightRecorder::new(RecorderConfig {
            slowest,
            recent: 8,
            stripes,
        }));
        let writers = 4usize;
        thread::scope(|scope| {
            for w in 0..writers {
                let recorder = Arc::clone(&recorder);
                let chunk: Vec<(usize, u64)> = durations
                    .iter()
                    .copied()
                    .enumerate()
                    .skip(w)
                    .step_by(writers)
                    .collect();
                scope.spawn(move || {
                    for (i, us) in chunk {
                        let outcome = if us == 0 {
                            QueryOutcome::ZeroResults
                        } else {
                            QueryOutcome::Ok
                        };
                        recorder.record(record(format!("r{i}"), us, outcome));
                    }
                });
            }
        });

        let mut expected = durations.clone();
        expected.sort_unstable_by(|a, b| b.cmp(a));
        expected.truncate(slowest);
        let got: Vec<u64> = recorder.slowest().iter().map(|r| r.duration_us).collect();
        proptest::prop_assert!(
            got == expected,
            "slowest mismatch: got {:?} want {:?} (n={}, stripes={})",
            got, expected, n, stripes
        );

        // Accounting survives the interleaving too.
        let counters = recorder.counters();
        proptest::prop_assert!(counters.recorded == n as u64);
        let zero = durations.iter().filter(|&&d| d == 0).count() as u64;
        proptest::prop_assert!(counters.zero_results == zero);

        // `recent` holds the highest sequence numbers, newest first.
        let recent = recorder.recent();
        proptest::prop_assert!(recent.len() == n.min(8));
        proptest::prop_assert!(recent.windows(2).all(|w| w[0].seq > w[1].seq));
    }
}
