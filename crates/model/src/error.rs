//! Error types shared across the workspace.
//!
//! All fallible public APIs return [`WwtError`] (or a more specific error
//! that converts into it, like [`QueryParseError`]) instead of `Option` /
//! panics, so service layers can map failures onto protocol responses.

/// Failure to build a [`crate::Query`] from user input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryParseError {
    /// The input contained no non-empty column keyword segment.
    NoColumns {
        /// The offending input, verbatim.
        input: String,
    },
}

impl std::fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryParseError::NoColumns { input } => write!(
                f,
                "query {input:?} has no column keywords (expected \"kw kw | kw kw | ...\")"
            ),
        }
    }
}

impl std::error::Error for QueryParseError {}

/// Errors surfaced by WWT components.
#[derive(Debug)]
pub enum WwtError {
    /// An I/O error from index persistence or corpus loading.
    Io(std::io::Error),
    /// A persisted index or corpus file was malformed.
    Corrupt(String),
    /// A query referenced something that does not exist (e.g. an unknown
    /// table id in a table store).
    NotFound(String),
    /// Invalid configuration or arguments.
    Invalid(String),
    /// A query string could not be parsed.
    Query(QueryParseError),
    /// The request's deadline expired before the pipeline finished; the
    /// payload names the stage boundary where the budget ran out.
    DeadlineExceeded(String),
    /// An unexpected internal failure — a pipeline panic caught at the
    /// service boundary, or a worker that died mid-request. Always the
    /// server's fault (HTTP 500), never the client's; the payload is a
    /// short operator-facing description.
    Internal(String),
    /// The service is temporarily refusing this class of request —
    /// e.g. mutations while the journal is in sticky read-only degraded
    /// mode. Maps to HTTP 503 with a `Retry-After`; retrying later (or
    /// after an operator recovers the service) is expected to succeed.
    Unavailable(String),
}

impl std::fmt::Display for WwtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WwtError::Io(e) => write!(f, "io error: {e}"),
            WwtError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            WwtError::NotFound(m) => write!(f, "not found: {m}"),
            WwtError::Invalid(m) => write!(f, "invalid: {m}"),
            WwtError::Query(e) => write!(f, "bad query: {e}"),
            WwtError::DeadlineExceeded(stage) => {
                write!(f, "deadline exceeded at {stage}")
            }
            WwtError::Internal(m) => write!(f, "internal error: {m}"),
            WwtError::Unavailable(m) => write!(f, "unavailable: {m}"),
        }
    }
}

impl std::error::Error for WwtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WwtError::Io(e) => Some(e),
            WwtError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WwtError {
    fn from(e: std::io::Error) -> Self {
        WwtError::Io(e)
    }
}

impl From<QueryParseError> for WwtError {
    fn from(e: QueryParseError) -> Self {
        WwtError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(WwtError::Corrupt("bad magic".into())
            .to_string()
            .contains("bad magic"));
        assert!(WwtError::NotFound("T9".into()).to_string().contains("T9"));
        assert!(WwtError::Invalid("q=0".into()).to_string().contains("q=0"));
        assert_eq!(
            WwtError::DeadlineExceeded("consolidate".into()).to_string(),
            "deadline exceeded at consolidate"
        );
        assert_eq!(
            WwtError::Internal("probe worker panicked".into()).to_string(),
            "internal error: probe worker panicked"
        );
        assert_eq!(
            WwtError::Unavailable("read-only".into()).to_string(),
            "unavailable: read-only"
        );
    }

    #[test]
    fn io_error_source_preserved() {
        use std::error::Error;
        let e: WwtError = std::io::Error::other("boom").into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn query_parse_error_converts_and_chains() {
        use std::error::Error;
        let parse = QueryParseError::NoColumns {
            input: " | ".into(),
        };
        assert!(parse.to_string().contains("no column keywords"));
        let e: WwtError = parse.clone().into();
        assert!(matches!(&e, WwtError::Query(p) if *p == parse));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("bad query"));
    }
}
