//! Error type shared across the workspace.

/// Errors surfaced by WWT components.
#[derive(Debug)]
pub enum WwtError {
    /// An I/O error from index persistence or corpus loading.
    Io(std::io::Error),
    /// A persisted index or corpus file was malformed.
    Corrupt(String),
    /// A query referenced something that does not exist (e.g. an unknown
    /// table id in a table store).
    NotFound(String),
    /// Invalid configuration or arguments.
    Invalid(String),
}

impl std::fmt::Display for WwtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WwtError::Io(e) => write!(f, "io error: {e}"),
            WwtError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            WwtError::NotFound(m) => write!(f, "not found: {m}"),
            WwtError::Invalid(m) => write!(f, "invalid: {m}"),
        }
    }
}

impl std::error::Error for WwtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WwtError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WwtError {
    fn from(e: std::io::Error) -> Self {
        WwtError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(WwtError::Corrupt("bad magic".into())
            .to_string()
            .contains("bad magic"));
        assert!(WwtError::NotFound("T9".into()).to_string().contains("T9"));
        assert!(WwtError::Invalid("q=0".into()).to_string().contains("q=0"));
    }

    #[test]
    fn io_error_source_preserved() {
        use std::error::Error;
        let e: WwtError = std::io::Error::new(std::io::ErrorKind::Other, "boom").into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("boom"));
    }
}
