//! Column-keyword queries (paper §1).

use crate::error::QueryParseError;

/// A table query: `q` sets of keywords, one per desired answer column.
///
/// Example from the paper's Figure 1:
/// `Query::parse("name of explorers | nationality | areas explored")`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Keyword string for each query column `Q_1 .. Q_q`, in order. The
    /// first column is special: every relevant table must contain it
    /// (the `must-match` constraint, paper Eq. 7).
    pub columns: Vec<String>,
}

impl Query {
    /// Builds a query from column keyword strings.
    ///
    /// # Panics
    /// Panics if `columns` is empty. Service layers should prefer the
    /// fallible [`Query::try_new`].
    pub fn new<S: Into<String>>(columns: Vec<S>) -> Self {
        Self::try_new(columns).expect("a query needs at least one column")
    }

    /// Builds a query from column keyword strings, rejecting an empty
    /// column list.
    pub fn try_new<S: Into<String>>(columns: Vec<S>) -> Result<Self, QueryParseError> {
        let columns: Vec<String> = columns.into_iter().map(Into::into).collect();
        if columns.is_empty() {
            Err(QueryParseError::NoColumns {
                input: String::new(),
            })
        } else {
            Ok(Query { columns })
        }
    }

    /// Parses the `"kw kw | kw kw | ..."` syntax used throughout the paper
    /// (Table 1). Empty segments are dropped; errors if nothing remains.
    pub fn parse(s: &str) -> Result<Self, QueryParseError> {
        let columns: Vec<String> = s
            .split('|')
            .map(|c| c.trim().to_string())
            .filter(|c| !c.is_empty())
            .collect();
        if columns.is_empty() {
            Err(QueryParseError::NoColumns {
                input: s.to_string(),
            })
        } else {
            Ok(Query { columns })
        }
    }

    /// Number of query columns `q`.
    #[inline]
    pub fn q(&self) -> usize {
        self.columns.len()
    }

    /// The keyword string of query column `l` (0-based).
    #[inline]
    pub fn column(&self, l: usize) -> &str {
        &self.columns[l]
    }

    /// The union of all column keyword strings, used for the first index
    /// probe (paper §2.2.1).
    pub fn all_keywords(&self) -> String {
        self.columns.join(" ")
    }

    /// Minimum number of columns a relevant table must map (`min-match`,
    /// paper Eq. 8): 1 for single-column queries, 2 otherwise.
    #[inline]
    pub fn min_match(&self) -> usize {
        if self.q() >= 2 {
            2
        } else {
            1
        }
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.columns.join(" | "))
    }
}

impl std::str::FromStr for Query {
    type Err = QueryParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Query::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_pipe_syntax() {
        let q = Query::parse("name of explorers | nationality | areas explored").unwrap();
        assert_eq!(q.q(), 3);
        assert_eq!(q.column(1), "nationality");
    }

    #[test]
    fn parse_trims_and_drops_empty_segments() {
        let q = Query::parse("  dog breed |  | ").unwrap();
        assert_eq!(q.q(), 1);
        assert_eq!(q.column(0), "dog breed");
        assert!(matches!(
            Query::parse(" | "),
            Err(QueryParseError::NoColumns { .. })
        ));
        assert!(Query::parse("").is_err());
    }

    #[test]
    fn from_str_matches_parse() {
        let q: Query = "country | currency".parse().unwrap();
        assert_eq!(q, Query::parse("country | currency").unwrap());
        assert!(" | ".parse::<Query>().is_err());
    }

    #[test]
    fn try_new_rejects_empty() {
        assert!(Query::try_new(Vec::<String>::new()).is_err());
        assert_eq!(Query::try_new(vec!["a"]).unwrap().q(), 1);
    }

    #[test]
    fn min_match_rule() {
        assert_eq!(Query::parse("dog breed").unwrap().min_match(), 1);
        assert_eq!(Query::parse("country | currency").unwrap().min_match(), 2);
        assert_eq!(Query::parse("a | b | c").unwrap().min_match(), 2);
    }

    #[test]
    fn display_roundtrip() {
        let q = Query::parse("country | currency").unwrap();
        assert_eq!(q.to_string(), "country | currency");
        assert_eq!(Query::parse(&q.to_string()).unwrap(), q);
    }

    #[test]
    fn all_keywords_union() {
        let q = Query::parse("pain killers | company").unwrap();
        assert_eq!(q.all_keywords(), "pain killers company");
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_query_panics() {
        let _ = Query::new(Vec::<String>::new());
    }
}
