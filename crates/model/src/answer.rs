//! The consolidated answer table returned to the user (paper §2.2.3).

use crate::table::TableId;

/// One row of the consolidated answer, with provenance and support.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerRow {
    /// Cell values, one per query column (empty string = no value found).
    pub cells: Vec<String>,
    /// Number of source rows merged into this row (duplicates across
    /// tables increase support; the ranker surfaces highly supported rows).
    pub support: u32,
    /// Tables that contributed to this row.
    pub sources: Vec<TableId>,
    /// Ranker score (higher ranks first); combines support and the
    /// relevance of contributing tables.
    pub score: f64,
}

impl AnswerRow {
    /// Creates a row with unit support from a single source table.
    pub fn new(cells: Vec<String>, source: TableId, score: f64) -> Self {
        AnswerRow {
            cells,
            support: 1,
            sources: vec![source],
            score,
        }
    }
}

/// The consolidated multi-column answer table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnswerTable {
    /// Column headers: the query's keyword strings `Q_1..Q_q`.
    pub columns: Vec<String>,
    /// Rows, in ranker order (most relevant / best supported first).
    pub rows: Vec<AnswerRow>,
}

impl AnswerTable {
    /// An empty answer for a query with the given column descriptors.
    pub fn empty(columns: Vec<String>) -> Self {
        AnswerTable {
            columns,
            rows: Vec::new(),
        }
    }

    /// Number of answer columns `q`.
    pub fn q(&self) -> usize {
        self.columns.len()
    }

    /// Number of consolidated rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text (for examples and CLI
    /// output). Columns wider than `max_width` characters are truncated
    /// with `…`.
    pub fn render(&self, max_width: usize) -> String {
        let clip = |s: &str| -> String {
            if s.chars().count() > max_width {
                let mut out: String = s.chars().take(max_width.saturating_sub(1)).collect();
                out.push('…');
                out
            } else {
                s.to_string()
            }
        };
        let header: Vec<String> = self.columns.iter().map(|c| clip(c)).collect();
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.cells.iter().map(|c| clip(c)).collect())
            .collect();
        let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
        for r in &rows {
            for (i, c) in r.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.chars().count());
                }
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                let c = cells.get(i).map(String::as_str).unwrap_or("");
                let pad = w - c.chars().count().min(*w);
                line.push(' ');
                line.push_str(c);
                line.push_str(&" ".repeat(pad));
                line.push_str(" |");
            }
            line
        };
        let sep = {
            let mut line = String::from("+");
            for w in &widths {
                line.push_str(&"-".repeat(w + 2));
                line.push('+');
            }
            line
        };
        let mut out = String::new();
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&fmt_row(&header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for r in &rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out.push_str(&sep);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_answer() {
        let a = AnswerTable::empty(vec!["country".into(), "currency".into()]);
        assert!(a.is_empty());
        assert_eq!(a.q(), 2);
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn render_aligns_columns() {
        let mut a = AnswerTable::empty(vec!["name".into(), "nationality".into()]);
        a.rows.push(AnswerRow::new(
            vec!["Abel Tasman".into(), "Dutch".into()],
            TableId(1),
            1.0,
        ));
        let s = a.render(40);
        assert!(s.contains("| name        | nationality |"));
        assert!(s.contains("| Abel Tasman | Dutch       |"));
    }

    #[test]
    fn render_truncates_wide_cells() {
        let mut a = AnswerTable::empty(vec!["x".into()]);
        a.rows.push(AnswerRow::new(
            vec!["abcdefghijklmnop".into()],
            TableId(0),
            0.0,
        ));
        let s = a.render(8);
        assert!(s.contains("abcdefg…"));
        assert!(!s.contains("abcdefgh"));
    }

    #[test]
    fn answer_row_provenance() {
        let r = AnswerRow::new(vec!["a".into()], TableId(4), 0.5);
        assert_eq!(r.support, 1);
        assert_eq!(r.sources, vec![TableId(4)]);
    }
}
