//! The label space of the column mapping task (paper §3.1) and labelings.

use crate::table::TableId;
use std::collections::BTreeMap;

/// Label assigned to a web-table column.
///
/// The paper's label set is `Y = {1..q} ∪ {na, nr}` (§3.1):
/// * `Col(l)` — the column maps to query column `l` (0-based here);
/// * `Na` — the table is relevant but this column matches no query column;
/// * `Nr` — the column belongs to an irrelevant table (the `all-Irr`
///   constraint forces all columns of a table to share this label).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Label {
    /// Maps to query column `l` (0-based).
    Col(usize),
    /// Relevant table, no matching query column ("na").
    Na,
    /// Irrelevant table ("nr").
    Nr,
}

impl Label {
    /// True iff the label is a query-column label (`1..q` in the paper).
    #[inline]
    pub fn is_query_col(self) -> bool {
        matches!(self, Label::Col(_))
    }

    /// The query column index if this is a `Col` label.
    #[inline]
    pub fn col(self) -> Option<usize> {
        match self {
            Label::Col(l) => Some(l),
            _ => None,
        }
    }

    /// Enumerates the full label space for a query with `q` columns, in the
    /// order `Col(0)..Col(q-1), Na, Nr` (the order used by dense per-label
    /// arrays throughout the workspace).
    pub fn space(q: usize) -> Vec<Label> {
        let mut v: Vec<Label> = (0..q).map(Label::Col).collect();
        v.push(Label::Na);
        v.push(Label::Nr);
        v
    }

    /// Dense index of this label within [`Label::space`]`(q)`.
    #[inline]
    pub fn dense(self, q: usize) -> usize {
        match self {
            Label::Col(l) => {
                debug_assert!(l < q);
                l
            }
            Label::Na => q,
            Label::Nr => q + 1,
        }
    }

    /// Inverse of [`Label::dense`].
    #[inline]
    pub fn from_dense(i: usize, q: usize) -> Label {
        if i < q {
            Label::Col(i)
        } else if i == q {
            Label::Na
        } else {
            debug_assert_eq!(i, q + 1);
            Label::Nr
        }
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Label::Col(l) => write!(f, "Q{}", l + 1),
            Label::Na => write!(f, "na"),
            Label::Nr => write!(f, "nr"),
        }
    }
}

/// A full labeling of one table: one [`Label`] per column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Labeling {
    /// The labeled table.
    pub table: TableId,
    /// One label per column of the table.
    pub labels: Vec<Label>,
}

impl Labeling {
    /// Creates a labeling.
    pub fn new(table: TableId, labels: Vec<Label>) -> Self {
        Labeling { table, labels }
    }

    /// Marks the whole table irrelevant.
    pub fn all_nr(table: TableId, n_cols: usize) -> Self {
        Labeling {
            table,
            labels: vec![Label::Nr; n_cols],
        }
    }

    /// True iff any column carries a query-column label (i.e. the table was
    /// judged relevant and mapped).
    pub fn is_relevant(&self) -> bool {
        self.labels.iter().any(|l| l.is_query_col())
    }

    /// The column of this table mapped to query column `l`, if any.
    pub fn column_for(&self, l: usize) -> Option<usize> {
        self.labels.iter().position(|&lab| lab == Label::Col(l))
    }

    /// Checks the paper's four table-level hard constraints
    /// (Eqs. 5–8) for a query with `q` columns and `min_match` m.
    /// `m` is capped at the number of columns (see DESIGN.md).
    pub fn satisfies_constraints(&self, q: usize, min_match: usize) -> bool {
        let nt = self.labels.len();
        let m = min_match.min(nt);
        // mutex: each query column used at most once.
        let mut used = vec![0usize; q];
        for lab in &self.labels {
            if let Label::Col(l) = lab {
                if *l >= q {
                    return false;
                }
                used[*l] += 1;
                if used[*l] > 1 {
                    return false;
                }
            }
        }
        // all-Irr: nr count is 0 or nt.
        let nr = self.labels.iter().filter(|&&l| l == Label::Nr).count();
        if nr != 0 && nr != nt {
            return false;
        }
        if nr == nt {
            return true; // fully irrelevant labeling is always consistent.
        }
        // must-match: some column maps to query column 1 (label Col(0)).
        if !self.labels.contains(&Label::Col(0)) {
            return false;
        }
        // min-match: at least m columns not labeled na.
        let non_na = self.labels.iter().filter(|&&l| l != Label::Na).count();
        non_na >= m
    }
}

/// Ground-truth column labels for a set of candidate tables, as produced by
/// the corpus generator (standing in for the paper's 1906 manually labeled
/// tables).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroundTruth {
    /// Table → reference labels, ordered for reproducibility.
    pub labels: BTreeMap<TableId, Vec<Label>>,
}

impl GroundTruth {
    /// Empty ground truth.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the reference labeling of one table.
    pub fn insert(&mut self, table: TableId, labels: Vec<Label>) {
        self.labels.insert(table, labels);
    }

    /// Reference labels of `table`, if known.
    pub fn get(&self, table: TableId) -> Option<&[Label]> {
        self.labels.get(&table).map(Vec::as_slice)
    }

    /// True iff the reference marks `table` relevant.
    pub fn is_relevant(&self, table: TableId) -> bool {
        self.get(table)
            .map(|ls| ls.iter().any(|l| l.is_query_col()))
            .unwrap_or(false)
    }

    /// Number of labeled tables.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True iff no table is labeled.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_roundtrip() {
        for q in 1..5 {
            for (i, lab) in Label::space(q).into_iter().enumerate() {
                assert_eq!(lab.dense(q), i);
                assert_eq!(Label::from_dense(i, q), lab);
            }
        }
    }

    #[test]
    fn space_size() {
        assert_eq!(Label::space(3).len(), 5);
        assert_eq!(Label::space(1), vec![Label::Col(0), Label::Na, Label::Nr]);
    }

    #[test]
    fn display() {
        assert_eq!(Label::Col(0).to_string(), "Q1");
        assert_eq!(Label::Na.to_string(), "na");
        assert_eq!(Label::Nr.to_string(), "nr");
    }

    #[test]
    fn mutex_violation_detected() {
        let l = Labeling::new(TableId(0), vec![Label::Col(0), Label::Col(0)]);
        assert!(!l.satisfies_constraints(2, 2));
    }

    #[test]
    fn all_irr_violation_detected() {
        let l = Labeling::new(TableId(0), vec![Label::Nr, Label::Col(0)]);
        assert!(!l.satisfies_constraints(2, 2));
    }

    #[test]
    fn must_match_violation_detected() {
        let l = Labeling::new(TableId(0), vec![Label::Col(1), Label::Na]);
        assert!(!l.satisfies_constraints(2, 1));
    }

    #[test]
    fn min_match_counts_non_na() {
        // Two mapped columns: ok with m=2.
        let l = Labeling::new(TableId(0), vec![Label::Col(0), Label::Col(1), Label::Na]);
        assert!(l.satisfies_constraints(2, 2));
        // Only one mapped column: violates m=2.
        let l = Labeling::new(TableId(0), vec![Label::Col(0), Label::Na, Label::Na]);
        assert!(!l.satisfies_constraints(2, 2));
    }

    #[test]
    fn min_match_capped_by_width() {
        // Single-column table with q=2: effective m = 1.
        let l = Labeling::new(TableId(0), vec![Label::Col(0)]);
        assert!(l.satisfies_constraints(2, 2));
    }

    #[test]
    fn all_nr_is_consistent() {
        let l = Labeling::all_nr(TableId(0), 4);
        assert!(l.satisfies_constraints(3, 2));
        assert!(!l.is_relevant());
    }

    #[test]
    fn column_for_lookup() {
        let l = Labeling::new(TableId(0), vec![Label::Na, Label::Col(1), Label::Col(0)]);
        assert_eq!(l.column_for(0), Some(2));
        assert_eq!(l.column_for(1), Some(1));
        assert_eq!(l.column_for(2), None);
        assert!(l.is_relevant());
    }

    #[test]
    fn ground_truth_basics() {
        let mut gt = GroundTruth::new();
        assert!(gt.is_empty());
        gt.insert(TableId(1), vec![Label::Col(0), Label::Na]);
        gt.insert(TableId(2), vec![Label::Nr]);
        assert_eq!(gt.len(), 2);
        assert!(gt.is_relevant(TableId(1)));
        assert!(!gt.is_relevant(TableId(2)));
        assert!(!gt.is_relevant(TableId(99)));
    }
}
