//! # wwt-model
//!
//! Shared data model for the WWT structured web-search system
//! (Pimplikar & Sarawagi, VLDB 2012).
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! * [`WebTable`] — a table harvested from an HTML page, with title,
//!   zero-or-more header rows, body rows and scored context snippets
//!   (paper §2.1).
//! * [`Query`] — a column-keyword query `Q = (Q1..Qq)` (paper §1).
//! * [`Label`] — the label space `{1..q} ∪ {na, nr}` of the column
//!   mapping task (paper §3.1).
//! * [`Labeling`] / [`GroundTruth`] — predicted and reference column
//!   labelings used by the F1 metric (paper §5).
//! * [`AnswerTable`] — the consolidated multi-column answer (paper §2.2.3).
//!
//! The crate is dependency-light so that substrates (HTML parser, index,
//! graph algorithms) and the core column mapper can share types without
//! pulling in each other.

pub mod answer;
pub mod error;
pub mod label;
pub mod query;
pub mod table;

pub use answer::{AnswerRow, AnswerTable};
pub use error::{QueryParseError, WwtError};
pub use label::{GroundTruth, Label, Labeling};
pub use query::Query;
pub use table::{ContextSnippet, TableId, WebTable};
