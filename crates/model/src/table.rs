//! Web-table data model (paper §2.1).
//!
//! A [`WebTable`] is the unit extracted from an HTML document: an optional
//! title row, zero or more header rows, body rows, and a list of scored
//! [`ContextSnippet`]s pulled from around the table in the parent document.

/// Opaque identifier of a web table within a corpus / table store.
///
/// Identifiers are dense (assigned sequentially at extraction time), so they
/// can be used to index into `Vec`-backed side tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl TableId {
    /// The id as a `usize`, for indexing side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TableId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A text snippet extracted from the parent document of a table, with a
/// score reflecting how likely the snippet describes the table (paper
/// §2.1.2: DOM distance and formatting-tag frequency).
#[derive(Debug, Clone, PartialEq)]
pub struct ContextSnippet {
    /// The raw snippet text.
    pub text: String,
    /// Score in `(0, 1]`; higher means more likely to describe the table.
    pub score: f64,
}

impl ContextSnippet {
    /// Creates a snippet, clamping the score into `(0, 1]` (NaN, which
    /// `clamp` would propagate, bottoms out; ±∞ clamp like any number).
    pub fn new(text: impl Into<String>, score: f64) -> Self {
        let score = if score.is_nan() { 0.0 } else { score };
        ContextSnippet {
            text: text.into(),
            score: score.clamp(f64::MIN_POSITIVE, 1.0),
        }
    }
}

/// A data table extracted from a web page.
///
/// Invariants (enforced by [`WebTable::new`]):
/// * every header row and every body row has exactly `n_cols` cells
///   (short rows are padded with empty strings, long rows truncated);
/// * `n_cols >= 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct WebTable {
    /// Identifier within the corpus.
    pub id: TableId,
    /// URL of the page the table was extracted from.
    pub url: String,
    /// Title row text, if a title row was detected (paper §2.1.1: a
    /// "different" top row whose columns beyond the first are empty).
    pub title: Option<String>,
    /// Header rows (`h × n_cols`). May be empty: 18% of the paper's corpus
    /// had no header.
    pub headers: Vec<Vec<String>>,
    /// Body rows (`n × n_cols`).
    pub rows: Vec<Vec<String>>,
    /// Scored context snippets from the parent document.
    pub context: Vec<ContextSnippet>,
    n_cols: usize,
}

impl WebTable {
    /// Builds a table, normalizing all rows to a common width.
    ///
    /// The width is the maximum width over header and body rows; short rows
    /// are padded with empty cells. Returns `None` when the table has no
    /// columns at all (no rows, or only empty rows).
    pub fn new(
        id: TableId,
        url: impl Into<String>,
        title: Option<String>,
        mut headers: Vec<Vec<String>>,
        mut rows: Vec<Vec<String>>,
        context: Vec<ContextSnippet>,
    ) -> Option<Self> {
        let n_cols = headers
            .iter()
            .chain(rows.iter())
            .map(Vec::len)
            .max()
            .unwrap_or(0);
        if n_cols == 0 {
            return None;
        }
        for r in headers.iter_mut().chain(rows.iter_mut()) {
            r.resize(n_cols, String::new());
        }
        Some(WebTable {
            id,
            url: url.into(),
            title,
            headers,
            rows,
            context,
            n_cols,
        })
    }

    /// Number of columns `n_t`.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of body rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of header rows `h`.
    #[inline]
    pub fn n_header_rows(&self) -> usize {
        self.headers.len()
    }

    /// Cell text of body row `r`, column `c`.
    ///
    /// # Panics
    /// Panics if `r` or `c` is out of bounds.
    #[inline]
    pub fn cell(&self, r: usize, c: usize) -> &str {
        &self.rows[r][c]
    }

    /// Header text of header row `r`, column `c` (`H_rc` in the paper).
    ///
    /// # Panics
    /// Panics if `r` or `c` is out of bounds.
    #[inline]
    pub fn header(&self, r: usize, c: usize) -> &str {
        &self.headers[r][c]
    }

    /// Iterator over the body cells of column `c`.
    pub fn column(&self, c: usize) -> impl Iterator<Item = &str> + '_ {
        self.rows.iter().map(move |row| row[c].as_str())
    }

    /// All header texts of column `c`, one entry per header row.
    pub fn column_headers(&self, c: usize) -> impl Iterator<Item = &str> + '_ {
        self.headers.iter().map(move |row| row[c].as_str())
    }

    /// Concatenation of all header cells (all rows, all columns), used when
    /// indexing the `header` field.
    pub fn all_header_text(&self) -> String {
        let mut s = String::new();
        for row in &self.headers {
            for cell in row {
                if !cell.is_empty() {
                    if !s.is_empty() {
                        s.push(' ');
                    }
                    s.push_str(cell);
                }
            }
        }
        s
    }

    /// Concatenation of title and all context snippets, used when indexing
    /// the `context` field.
    pub fn all_context_text(&self) -> String {
        let mut s = String::new();
        if let Some(t) = &self.title {
            s.push_str(t);
        }
        for snip in &self.context {
            if !s.is_empty() {
                s.push(' ');
            }
            s.push_str(&snip.text);
        }
        s
    }

    /// Concatenation of all body cells, used when indexing the `content`
    /// field.
    pub fn all_content_text(&self) -> String {
        let mut s = String::new();
        for row in &self.rows {
            for cell in row {
                if !cell.is_empty() {
                    if !s.is_empty() {
                        s.push(' ');
                    }
                    s.push_str(cell);
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WebTable {
        WebTable::new(
            TableId(7),
            "http://example.org/explorers",
            Some("List of explorers".into()),
            vec![vec!["Name".into(), "Nationality".into()]],
            vec![
                vec!["Abel Tasman".into(), "Dutch".into()],
                vec!["Vasco da Gama".into(), "Portuguese".into()],
            ],
            vec![ContextSnippet::new("famous explorers in history", 0.9)],
        )
        .unwrap()
    }

    #[test]
    fn dimensions() {
        let t = sample();
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.n_header_rows(), 1);
    }

    #[test]
    fn ragged_rows_are_padded() {
        let t = WebTable::new(
            TableId(0),
            "u",
            None,
            vec![vec!["a".into()]],
            vec![vec!["1".into(), "2".into(), "3".into()], vec!["x".into()]],
            vec![],
        )
        .unwrap();
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.header(0, 2), "");
        assert_eq!(t.cell(1, 1), "");
        assert_eq!(t.cell(0, 2), "3");
    }

    #[test]
    fn empty_table_rejected() {
        assert!(WebTable::new(TableId(0), "u", None, vec![], vec![], vec![]).is_none());
        assert!(WebTable::new(TableId(0), "u", None, vec![vec![]], vec![vec![]], vec![]).is_none());
    }

    #[test]
    fn field_text_concatenation() {
        let t = sample();
        assert_eq!(t.all_header_text(), "Name Nationality");
        assert_eq!(
            t.all_context_text(),
            "List of explorers famous explorers in history"
        );
        assert!(t.all_content_text().contains("Abel Tasman"));
        assert!(t.all_content_text().contains("Portuguese"));
    }

    #[test]
    fn column_iterators() {
        let t = sample();
        let col1: Vec<&str> = t.column(1).collect();
        assert_eq!(col1, vec!["Dutch", "Portuguese"]);
        let h0: Vec<&str> = t.column_headers(0).collect();
        assert_eq!(h0, vec!["Name"]);
    }

    #[test]
    fn context_score_clamped() {
        assert_eq!(ContextSnippet::new("x", 7.0).score, 1.0);
        assert!(ContextSnippet::new("x", -1.0).score > 0.0);
        // Non-finite scores bottom out instead of propagating.
        assert!(ContextSnippet::new("x", f64::NAN).score > 0.0);
        assert_eq!(ContextSnippet::new("x", f64::INFINITY).score, 1.0);
        assert!(ContextSnippet::new("x", f64::NEG_INFINITY).score > 0.0);
    }

    #[test]
    fn table_id_display_and_index() {
        assert_eq!(TableId(3).to_string(), "T3");
        assert_eq!(TableId(3).index(), 3);
    }
}
