//! Deterministic fault injection for the WWT stack.
//!
//! A **failpoint** is a named site in production code where a test (or a
//! chaos-enabled deployment) can inject a fault: a panic, an I/O error,
//! or a delay. Sites are compiled in permanently and are designed to be
//! free when nothing is armed: [`evaluate`] is two relaxed atomic loads
//! and a predictable branch — no locks, no allocation, no syscalls (the
//! `fail_soft_overhead` series in `BENCH_query_path.json` prices the
//! disarmed path end to end).
//!
//! Arming happens through the `WWT_CHAOS` environment variable (read
//! once, at the first evaluation) or programmatically via [`arm`]. The
//! grammar is a comma-separated list of `site=behavior` entries:
//!
//! ```text
//! WWT_CHAOS='journal.append=error*3,probe.shard=panic,map.batch=delay:50~1in4'
//! ```
//!
//! * behavior — `panic`, `error` (an injected `io::Error`), or
//!   `delay:MS` (sleep that many milliseconds, then proceed);
//! * `*N` — fire at most N times, then the site goes inert (this is how
//!   the CI chaos smoke recovers: the fault "heals" deterministically);
//! * `~1inK` — fire on roughly 1 in K evaluations, decided by a seeded
//!   hash of `(seed, site, hit index)` so a run with the same
//!   `WWT_CHAOS_SEED` (default 0) fires on exactly the same hits.
//!
//! Faults are deterministic by construction: no wall clock, no global
//! RNG — rerunning the same binary with the same spec and seed injects
//! the same faults at the same hit indices.
//!
//! Tests that arm failpoints share process-global state; serialize them
//! (e.g. behind a `static Mutex`) and call [`disarm_all`] when done.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What an armed site does when it fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Panic at the site (exercises panic-isolation paths).
    Panic,
    /// Fail the site with an injected error.
    Error,
    /// Sleep this long at the site, then proceed normally.
    Delay(Duration),
}

struct Site {
    name: String,
    fault: Fault,
    /// Fire on ~1 in `one_in` evaluations (1 = every evaluation).
    one_in: u64,
    /// Evaluations so far (the deterministic sampling counter).
    hits: u64,
    /// Fires left before the site goes inert (`u64::MAX` = unlimited).
    remaining: u64,
}

/// Fast-path flag: false ⇒ no site is armed and [`evaluate`] returns
/// immediately. Never true while the registry is empty.
static ARMED: AtomicBool = AtomicBool::new(false);
static REGISTRY: OnceLock<Mutex<Vec<Site>>> = OnceLock::new();
/// One-shot env read; `get_or_init` on the hot path is a single
/// acquire load once initialized.
static ENV_INIT: OnceLock<()> = OnceLock::new();
static SEED: OnceLock<u64> = OnceLock::new();

fn registry() -> &'static Mutex<Vec<Site>> {
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn seed() -> u64 {
    *SEED.get_or_init(|| {
        std::env::var("WWT_CHAOS_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0)
    })
}

fn init_from_env() {
    ENV_INIT.get_or_init(|| {
        if let Ok(spec) = std::env::var("WWT_CHAOS") {
            if !spec.trim().is_empty() {
                if let Err(e) = arm(&spec) {
                    eprintln!("wwt-chaos: ignoring bad WWT_CHAOS spec: {e}");
                }
            }
        }
    });
}

/// FNV-1a over the site name: stable across runs, feeds the sampler.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates `(seed, site, hit)` into a
/// uniform-ish u64 without any global RNG state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Evaluates the failpoint `site`. `None` (the overwhelmingly common
/// answer) means proceed normally; `Some(fault)` means the caller must
/// act on the injected fault. The disarmed path is two relaxed atomic
/// loads.
#[inline]
pub fn evaluate(site: &str) -> Option<Fault> {
    init_from_env();
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    evaluate_armed(site)
}

#[cold]
fn evaluate_armed(site: &str) -> Option<Fault> {
    let mut sites = registry().lock().unwrap();
    let entry = sites.iter_mut().find(|s| s.name == site)?;
    let hit = entry.hits;
    entry.hits += 1;
    if entry.remaining == 0 {
        return None;
    }
    if entry.one_in > 1 {
        let roll = splitmix64(seed() ^ fnv1a64(entry.name.as_bytes()) ^ hit);
        if !roll.is_multiple_of(entry.one_in) {
            return None;
        }
    }
    if entry.remaining != u64::MAX {
        entry.remaining -= 1;
    }
    Some(entry.fault.clone())
}

/// Convenience for I/O sites: panics on [`Fault::Panic`], sleeps on
/// [`Fault::Delay`], returns an injected [`std::io::Error`] on
/// [`Fault::Error`]. The error message names the site so it is
/// attributable end to end.
#[inline]
pub fn io_failpoint(site: &str) -> std::io::Result<()> {
    match evaluate(site) {
        None => Ok(()),
        Some(Fault::Panic) => panic!("wwt-chaos: injected panic at {site}"),
        Some(Fault::Delay(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
        Some(Fault::Error) => Err(std::io::Error::other(format!(
            "wwt-chaos: injected fault at {site}"
        ))),
    }
}

/// Arms failpoints from a spec (`site=behavior[*N][~1inK]`, comma-
/// separated — the `WWT_CHAOS` grammar). Re-arming a site replaces its
/// previous behavior and resets its counters.
pub fn arm(spec: &str) -> Result<(), String> {
    let mut parsed = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (name, behavior) = entry
            .split_once('=')
            .ok_or_else(|| format!("entry {entry:?} is not site=behavior"))?;
        parsed.push(parse_site(name.trim(), behavior.trim())?);
    }
    if parsed.is_empty() {
        return Err("empty chaos spec".to_string());
    }
    let mut sites = registry().lock().unwrap();
    for site in parsed {
        sites.retain(|s| s.name != site.name);
        sites.push(site);
    }
    ARMED.store(true, Ordering::Relaxed);
    Ok(())
}

fn parse_site(name: &str, behavior: &str) -> Result<Site, String> {
    if name.is_empty() {
        return Err("empty site name".to_string());
    }
    let (behavior, one_in) = match behavior.split_once('~') {
        Some((b, sampler)) => {
            let k = sampler
                .strip_prefix("1in")
                .and_then(|k| k.parse::<u64>().ok())
                .filter(|&k| k >= 1)
                .ok_or_else(|| format!("bad sampler {sampler:?} (want 1inK)"))?;
            (b, k)
        }
        None => (behavior, 1),
    };
    let (behavior, remaining) = match behavior.split_once('*') {
        Some((b, count)) => {
            let n = count
                .parse::<u64>()
                .map_err(|_| format!("bad fire count {count:?}"))?;
            (b, n)
        }
        None => (behavior, u64::MAX),
    };
    let fault = if behavior == "panic" {
        Fault::Panic
    } else if behavior == "error" {
        Fault::Error
    } else if let Some(ms) = behavior.strip_prefix("delay:") {
        let ms = ms
            .parse::<u64>()
            .map_err(|_| format!("bad delay {ms:?} (want delay:MS)"))?;
        Fault::Delay(Duration::from_millis(ms))
    } else {
        return Err(format!(
            "unknown behavior {behavior:?} (want panic|error|delay:MS)"
        ));
    };
    Ok(Site {
        name: name.to_string(),
        fault,
        one_in,
        hits: 0,
        remaining,
    })
}

/// Disarms every failpoint and restores the zero-cost fast path.
pub fn disarm_all() {
    // Order matters: clear the flag first so a racing `evaluate` that
    // sees it armed still finds a consistent (possibly empty) registry.
    ARMED.store(false, Ordering::Relaxed);
    if let Some(sites) = REGISTRY.get() {
        sites.lock().unwrap().clear();
    }
}

/// Whether any failpoint is currently armed.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

// ------------------------------------------------------------------
// Failpoint site names. Centralized so call sites and tests cannot
// drift apart on spelling.
// ------------------------------------------------------------------

/// Journal append/fsync (the durability write path).
pub const JOURNAL_APPEND: &str = "journal.append";
/// Persisted-index shard load.
pub const PERSIST_LOAD: &str = "persist.load";
/// Persisted-index shard save.
pub const PERSIST_SAVE: &str = "persist.save";
/// One shard's retrieval probe inside the scatter-gather fan-out.
pub const PROBE_SHARD: &str = "probe.shard";
/// The column-mapping batch (one fires per mapper run).
pub const MAP_BATCH: &str = "map.batch";
/// Engine rebuild during `POST /admin/reload`.
pub const RELOAD_BUILD: &str = "reload.build";

#[cfg(test)]
mod tests {
    use super::*;

    /// Failpoints are process-global: every test that arms them holds
    /// this lock so parallel test threads cannot interleave specs.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_sites_are_inert() {
        let _guard = TEST_LOCK.lock().unwrap();
        disarm_all();
        assert!(!armed());
        assert_eq!(evaluate("anything"), None);
        assert!(io_failpoint("anything").is_ok());
    }

    #[test]
    fn arm_fires_and_disarm_restores() {
        let _guard = TEST_LOCK.lock().unwrap();
        arm("x.y=error").unwrap();
        assert!(armed());
        assert_eq!(evaluate("x.y"), Some(Fault::Error));
        assert_eq!(evaluate("other.site"), None);
        let err = io_failpoint("x.y").unwrap_err();
        assert!(err.to_string().contains("x.y"), "error names the site");
        disarm_all();
        assert_eq!(evaluate("x.y"), None);
    }

    #[test]
    fn fire_count_exhausts_deterministically() {
        let _guard = TEST_LOCK.lock().unwrap();
        arm("j.a=error*3").unwrap();
        for _ in 0..3 {
            assert_eq!(evaluate("j.a"), Some(Fault::Error));
        }
        // The fourth and every later evaluation passes: the fault healed.
        for _ in 0..10 {
            assert_eq!(evaluate("j.a"), None);
        }
        disarm_all();
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let _guard = TEST_LOCK.lock().unwrap();
        let run = || -> Vec<bool> {
            arm("s.p=delay:1~1in3").unwrap();
            let fired = (0..64).map(|_| evaluate("s.p").is_some()).collect();
            disarm_all();
            fired
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same spec => same firing pattern");
        let fired = a.iter().filter(|&&f| f).count();
        assert!(fired > 0 && fired < 64, "1in3 fires sometimes, not always");
    }

    #[test]
    fn rearming_replaces_behavior() {
        let _guard = TEST_LOCK.lock().unwrap();
        arm("r.s=error").unwrap();
        assert_eq!(evaluate("r.s"), Some(Fault::Error));
        arm("r.s=delay:7").unwrap();
        assert_eq!(
            evaluate("r.s"),
            Some(Fault::Delay(Duration::from_millis(7)))
        );
        disarm_all();
    }

    #[test]
    fn bad_specs_are_rejected() {
        let _guard = TEST_LOCK.lock().unwrap();
        for bad in [
            "",
            "justasite",
            "a=explode",
            "a=delay:soon",
            "a=error*many",
            "a=error~2in3",
            "=panic",
        ] {
            assert!(arm(bad).is_err(), "spec {bad:?} must be rejected");
        }
        assert!(!armed(), "failed arms must not flip the armed flag");
    }

    #[test]
    fn panic_fault_panics_at_the_site() {
        let _guard = TEST_LOCK.lock().unwrap();
        arm("p.q=panic").unwrap();
        let caught = std::panic::catch_unwind(|| io_failpoint("p.q"));
        disarm_all();
        let payload = caught.expect_err("must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("p.q"), "panic names the site: {msg}");
    }
}
