//! TF-IDF vectors and the similarity primitives of paper §3.2.1–3.2.2.

use crate::stats::CorpusStats;

/// A sparse TF-IDF vector over tokens, stored as a token-sorted weight
/// list.
///
/// Weight of term `w` = `tf(w) · idf(w)`. The squared L2 norm `‖·‖²` is the
/// quantity the paper's Eq. 1 uses to weight the prefix/suffix parts of a
/// segmented query.
///
/// The sorted representation makes every accumulation (norms, dot
/// products, coverage) run in **lexicographic token order** — fully
/// deterministic across processes and platforms, unlike a hash map whose
/// iteration order follows the process's random hash seed. Lookups are
/// binary searches; dot products are linear sorted merges.
#[derive(Debug, Clone, Default)]
pub struct TfIdfVector {
    /// `(token, weight)` sorted by token, one entry per distinct token.
    weights: Vec<(String, f64)>,
    norm_sq: f64,
}

impl TfIdfVector {
    /// Builds a vector from raw tokens using `stats` for IDF.
    pub fn from_tokens<S: AsRef<str>>(tokens: &[S], stats: &CorpusStats) -> Self {
        let mut sorted: Vec<&str> = tokens.iter().map(AsRef::as_ref).collect();
        sorted.sort_unstable();
        let mut weights: Vec<(String, f64)> = Vec::new();
        let mut norm_sq = 0.0;
        let mut i = 0;
        while i < sorted.len() {
            let t = sorted[i];
            let mut tf = 0.0f64;
            while i < sorted.len() && sorted[i] == t {
                tf += 1.0;
                i += 1;
            }
            let w = tf * stats.idf(t);
            norm_sq += w * w;
            weights.push((t.to_string(), w));
        }
        TfIdfVector { weights, norm_sq }
    }

    /// Weight of `term` (0 if absent).
    pub fn weight(&self, term: &str) -> f64 {
        self.weights
            .binary_search_by(|(t, _)| t.as_str().cmp(term))
            .map(|i| self.weights[i].1)
            .unwrap_or(0.0)
    }

    /// Squared L2 norm `‖v‖²`.
    pub fn norm_sq(&self) -> f64 {
        self.norm_sq
    }

    /// L2 norm `‖v‖`.
    pub fn norm(&self) -> f64 {
        self.norm_sq.sqrt()
    }

    /// True iff the vector has no terms with non-zero weight.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Dot product with another vector: a linear merge of the two sorted
    /// weight lists, accumulated in lexicographic token order.
    pub fn dot(&self, other: &TfIdfVector) -> f64 {
        let (a, b) = (&self.weights, &other.weights);
        let (mut i, mut j) = (0, 0);
        let mut sum = 0.0;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    sum += a[i].1 * b[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        sum
    }

    /// Cosine similarity (0 when either vector is empty). This is the
    /// paper's `inSim(P, H_rc)`.
    pub fn cosine(&self, other: &TfIdfVector) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            (self.dot(other) / denom).clamp(0.0, 1.0)
        }
    }

    /// The `Cover` variant of `inSim` (paper §3.2.2): the TF-IDF-weighted
    /// fraction of *this* vector's terms that appear in `other`:
    /// `(1/‖P‖²) Σ_{w ∈ P ∩ H} TI(w)²`.
    pub fn covered_fraction(&self, other: &TfIdfVector) -> f64 {
        if self.norm_sq == 0.0 {
            return 0.0;
        }
        let covered: f64 = self
            .weights
            .iter()
            .filter(|(t, _)| other.weight(t) != 0.0)
            .map(|(_, w)| w * w)
            .sum();
        (covered / self.norm_sq).clamp(0.0, 1.0)
    }

    /// Iterates over `(term, weight)` pairs in lexicographic term order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.weights.iter().map(|(t, w)| (t.as_str(), *w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    fn v(text: &str, stats: &CorpusStats) -> TfIdfVector {
        TfIdfVector::from_tokens(&tokenize(text), stats)
    }

    #[test]
    fn identical_vectors_have_cosine_one() {
        let s = CorpusStats::new();
        let a = v("nobel prize winner", &s);
        let b = v("nobel prize winner", &s);
        assert!((a.cosine(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_vectors_have_cosine_zero() {
        let s = CorpusStats::new();
        let a = v("nobel prize", &s);
        let b = v("dog breed", &s);
        assert_eq!(a.cosine(&b), 0.0);
    }

    #[test]
    fn empty_vector_safe() {
        let s = CorpusStats::new();
        let a = v("", &s);
        let b = v("anything", &s);
        assert_eq!(a.cosine(&b), 0.0);
        assert_eq!(a.covered_fraction(&b), 0.0);
        assert!(a.is_empty());
        assert_eq!(a.norm(), 0.0);
    }

    #[test]
    fn covered_fraction_partial() {
        let s = CorpusStats::new(); // uniform IDF = 1
        let q = v("nobel prize winner", &s);
        let h = v("winner list", &s);
        // one of three uniformly weighted terms covered.
        assert!((q.covered_fraction(&h) - 1.0 / 3.0).abs() < 1e-12);
        // covering vector direction does not matter for full overlap.
        assert!((h.covered_fraction(&h) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idf_downweights_common_terms_in_cosine() {
        // "name" is in every doc, "nationality" in one.
        let stats = CorpusStats::from_token_docs(vec![
            vec!["name", "nationality"],
            vec!["name", "area"],
            vec!["name", "id"],
        ]);
        let q = v("nationality", &stats);
        let h_good = v("name nationality", &stats);
        let h_bad = v("name id", &stats);
        assert!(q.cosine(&h_good) > q.cosine(&h_bad));
        assert_eq!(q.cosine(&h_bad), 0.0);
    }

    #[test]
    fn term_frequency_accumulates() {
        let s = CorpusStats::new();
        let a = TfIdfVector::from_tokens(&["dog", "dog", "cat"], &s);
        assert_eq!(a.weight("dog"), 2.0);
        assert_eq!(a.weight("cat"), 1.0);
        assert_eq!(a.norm_sq(), 5.0);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn dot_symmetry() {
        let s = CorpusStats::new();
        let a = v("a b c d", &s);
        let b = v("c d e", &s);
        assert!((a.dot(&b) - b.dot(&a)).abs() < 1e-12);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let s = CorpusStats::new();
        let a = TfIdfVector::from_tokens(&["zebra", "ant", "mule", "ant"], &s);
        let terms: Vec<&str> = a.iter().map(|(t, _)| t).collect();
        assert_eq!(terms, vec!["ant", "mule", "zebra"]);
        assert_eq!(a.weight("ant"), 2.0);
    }
}
