//! Corpus document-frequency statistics and IDF.
//!
//! `TI(w)` in the paper (§3.2.1) is "the TF-IDF score of the term": on the
//! query side term frequency is 1, so `TI(w)` reduces to the corpus IDF of
//! `w`. [`CorpusStats`] is built once over the whole table corpus (each
//! table = one document, all three fields concatenated) and shared by the
//! index, the features and the consolidator.

use std::collections::HashMap;

/// Document-frequency table over a corpus of `n_docs` documents.
#[derive(Debug, Clone, Default)]
pub struct CorpusStats {
    n_docs: u64,
    df: HashMap<String, u32>,
}

impl CorpusStats {
    /// Empty statistics (IDF falls back to a constant 1.0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds statistics from an iterator of documents, each given as its
    /// token list. A term is counted once per document.
    pub fn from_token_docs<I, D, S>(docs: I) -> Self
    where
        I: IntoIterator<Item = D>,
        D: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut stats = Self::new();
        for doc in docs {
            stats.add_doc(doc);
        }
        stats
    }

    /// Adds one document's tokens (duplicates within the document are
    /// counted once).
    pub fn add_doc<D, S>(&mut self, tokens: D)
    where
        D: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.n_docs += 1;
        let mut seen: Vec<&str> = Vec::new();
        let tokens: Vec<S> = tokens.into_iter().collect();
        for t in &tokens {
            let t = t.as_ref();
            if !seen.contains(&t) {
                seen.push(t);
            }
        }
        for t in seen {
            *self.df.entry(t.to_string()).or_insert(0) += 1;
        }
    }

    /// Number of documents seen.
    pub fn n_docs(&self) -> u64 {
        self.n_docs
    }

    /// Document frequency of `term` (0 if unseen).
    pub fn df(&self, term: &str) -> u32 {
        self.df.get(term).copied().unwrap_or(0)
    }

    /// Smoothed inverse document frequency:
    /// `idf(w) = 1 + ln((1 + N) / (1 + df(w)))`.
    ///
    /// Always ≥ 1 so that even corpus-saturating terms retain a little
    /// weight (mirrors Lucene's classic similarity). On an empty corpus the
    /// IDF is a constant 1.0, which degrades TF-IDF cosine to plain cosine.
    pub fn idf(&self, term: &str) -> f64 {
        if self.n_docs == 0 {
            return 1.0;
        }
        let df = self.df(term) as f64;
        1.0 + ((1.0 + self.n_docs as f64) / (1.0 + df)).ln()
    }

    /// Folds another corpus's statistics into this one. Document
    /// frequencies are additive across disjoint document sets, so merging
    /// the per-shard statistics of a partitioned corpus reproduces the
    /// unpartitioned statistics exactly (same `df`, same `n_docs`, and
    /// therefore bit-identical `idf`).
    pub fn merge(&mut self, other: &CorpusStats) {
        self.n_docs += other.n_docs;
        for (term, df) in &other.df {
            *self.df.entry(term.clone()).or_insert(0) += df;
        }
    }

    /// Number of distinct terms seen.
    pub fn vocab_size(&self) -> usize {
        self.df.len()
    }

    /// Iterates over `(term, df)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32)> + '_ {
        self.df.iter().map(|(t, &d)| (t.as_str(), d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> CorpusStats {
        CorpusStats::from_token_docs(vec![
            vec!["country", "currency"],
            vec!["country", "population"],
            vec!["dog", "breed", "dog"], // duplicate within doc counted once
        ])
    }

    #[test]
    fn df_counts_docs_not_occurrences() {
        let s = stats();
        assert_eq!(s.n_docs(), 3);
        assert_eq!(s.df("country"), 2);
        assert_eq!(s.df("dog"), 1);
        assert_eq!(s.df("unseen"), 0);
    }

    #[test]
    fn idf_ordering() {
        let s = stats();
        // Rarer terms get higher IDF; unseen terms the highest.
        assert!(s.idf("unseen") > s.idf("dog"));
        assert!(s.idf("dog") > s.idf("country"));
        assert!(s.idf("country") >= 1.0);
    }

    #[test]
    fn empty_corpus_constant_idf() {
        let s = CorpusStats::new();
        assert_eq!(s.idf("anything"), 1.0);
        assert_eq!(s.n_docs(), 0);
    }

    #[test]
    fn vocab_size_and_iter() {
        let s = stats();
        assert_eq!(s.vocab_size(), 5);
        let total: u32 = s.iter().map(|(_, d)| d).sum();
        assert_eq!(total, 2 + 1 + 1 + 1 + 1);
    }

    #[test]
    fn merge_reproduces_unpartitioned_stats() {
        let docs = [
            vec!["country", "currency"],
            vec!["country", "population"],
            vec!["dog", "breed"],
            vec!["dog", "currency"],
            vec!["area"],
        ];
        let whole = CorpusStats::from_token_docs(docs.iter().cloned());
        // Partition the docs 2/1/2 and merge the parts back together.
        let mut merged = CorpusStats::new();
        for part in [&docs[..2], &docs[2..3], &docs[3..]] {
            merged.merge(&CorpusStats::from_token_docs(part.iter().cloned()));
        }
        assert_eq!(merged.n_docs(), whole.n_docs());
        assert_eq!(merged.vocab_size(), whole.vocab_size());
        for (term, df) in whole.iter() {
            assert_eq!(merged.df(term), df, "df({term})");
            // Bit-identical IDF, not just approximately equal.
            assert_eq!(merged.idf(term).to_bits(), whole.idf(term).to_bits());
        }
        // Merging an empty side is a no-op.
        let before = merged.n_docs();
        merged.merge(&CorpusStats::new());
        assert_eq!(merged.n_docs(), before);
    }

    #[test]
    fn idf_monotone_in_df() {
        let mut s = CorpusStats::new();
        for _ in 0..100 {
            s.add_doc(vec!["common"]);
        }
        s.add_doc(vec!["rare", "common"]);
        assert!(s.idf("rare") > s.idf("common"));
        // Smoothed IDF stays >= 1 even for a term in every document.
        assert!(s.idf("common") >= 1.0);
    }
}
