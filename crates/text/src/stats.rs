//! Corpus document-frequency statistics and IDF.
//!
//! `TI(w)` in the paper (§3.2.1) is "the TF-IDF score of the term": on the
//! query side term frequency is 1, so `TI(w)` reduces to the corpus IDF of
//! `w`. [`CorpusStats`] is built once over the whole table corpus (each
//! table = one document, all three fields concatenated) and shared by the
//! index, the features and the consolidator.
//!
//! Terms are interned through a private [`TermDict`], so the statistics
//! are keyed by dense [`TermId`]s internally; the string API stays for
//! callers holding raw tokens, and the id API ([`CorpusStats::idf_id`])
//! lets the index skip the string hash entirely once a token is resolved.

use crate::dict::{TermDict, TermId};
use std::sync::Arc;

/// The dictionary behind a [`CorpusStats`]: owned while accumulating,
/// or shared with the index that froze it (one resident copy of the
/// vocabulary instead of two).
#[derive(Debug, Clone)]
enum Dict {
    Owned(TermDict),
    Shared(Arc<TermDict>),
}

impl Default for Dict {
    fn default() -> Self {
        Dict::Owned(TermDict::new())
    }
}

/// Document-frequency table over a corpus of `n_docs` documents.
#[derive(Debug, Clone, Default)]
pub struct CorpusStats {
    n_docs: u64,
    dict: Dict,
    /// `df[id]` = documents containing the term, aligned with `dict`.
    df: Vec<u32>,
}

impl CorpusStats {
    /// Empty statistics (IDF falls back to a constant 1.0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds statistics directly from already-counted document
    /// frequencies: `terms` sorted and deduplicated, `df[i]` the document
    /// frequency of `terms[i]` — the freeze-time fast path (an index
    /// builder derives df from its posting lists, so no per-document
    /// accumulation or hashing happens here). Equivalent to feeding
    /// [`CorpusStats::add_doc`] the same corpus: `df`/`n_docs` are the
    /// same integers, so IDF is bit-identical.
    pub fn from_sorted_df(n_docs: u64, terms: Vec<String>, df: Vec<u32>) -> Self {
        Self::from_shared_dict(n_docs, Arc::new(TermDict::from_sorted_terms(terms)), df)
    }

    /// [`CorpusStats::from_sorted_df`] over an existing shared
    /// dictionary — the index freeze hands its own `Arc<TermDict>` in,
    /// so the vocabulary stays resident **once**, not once per holder.
    /// `df[i]` must be the document frequency of the dictionary's term
    /// `i`.
    pub fn from_shared_dict(n_docs: u64, dict: Arc<TermDict>, df: Vec<u32>) -> Self {
        debug_assert_eq!(dict.len(), df.len());
        CorpusStats {
            n_docs,
            dict: Dict::Shared(dict),
            df,
        }
    }

    /// The dictionary, read-only.
    fn dict(&self) -> &TermDict {
        match &self.dict {
            Dict::Owned(d) => d,
            Dict::Shared(d) => d,
        }
    }

    /// The dictionary for mutation: a shared dictionary is detached
    /// (cloned) first — accumulation (`add_doc`/`merge`) onto frozen,
    /// index-shared statistics is a test-only path, and silently
    /// mutating a dictionary an index also reads would corrupt the
    /// index's id space.
    fn dict_mut(&mut self) -> &mut TermDict {
        if let Dict::Shared(d) = &self.dict {
            self.dict = Dict::Owned((**d).clone());
        }
        match &mut self.dict {
            Dict::Owned(d) => d,
            Dict::Shared(_) => unreachable!("just detached"),
        }
    }

    /// Builds statistics from an iterator of documents, each given as its
    /// token list. A term is counted once per document.
    pub fn from_token_docs<I, D, S>(docs: I) -> Self
    where
        I: IntoIterator<Item = D>,
        D: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut stats = Self::new();
        for doc in docs {
            stats.add_doc(doc);
        }
        stats
    }

    /// Adds one document's tokens (duplicates within the document are
    /// counted once).
    pub fn add_doc<D, S>(&mut self, tokens: D)
    where
        D: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.n_docs += 1;
        let mut ids: Vec<u32> = tokens
            .into_iter()
            .map(|t| self.intern(t.as_ref()).0)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        for id in ids {
            self.df[id as usize] += 1;
        }
    }

    fn intern(&mut self, term: &str) -> TermId {
        let id = self.dict_mut().intern(term);
        if id.index() == self.df.len() {
            self.df.push(0);
        }
        id
    }

    /// Number of documents seen.
    pub fn n_docs(&self) -> u64 {
        self.n_docs
    }

    /// The id of `term` in this statistics table's dictionary, if seen.
    #[inline]
    pub fn lookup(&self, term: &str) -> Option<TermId> {
        self.dict().lookup(term)
    }

    /// Document frequency of `term` (0 if unseen).
    pub fn df(&self, term: &str) -> u32 {
        self.lookup(term).map_or(0, |id| self.df_id(id))
    }

    /// Document frequency by interned id.
    #[inline]
    pub fn df_id(&self, id: TermId) -> u32 {
        self.df[id.index()]
    }

    /// Smoothed inverse document frequency:
    /// `idf(w) = 1 + ln((1 + N) / (1 + df(w)))`.
    ///
    /// Always ≥ 1 so that even corpus-saturating terms retain a little
    /// weight (mirrors Lucene's classic similarity). On an empty corpus the
    /// IDF is a constant 1.0, which degrades TF-IDF cosine to plain cosine.
    pub fn idf(&self, term: &str) -> f64 {
        self.idf_of_df(self.df(term))
    }

    /// [`CorpusStats::idf`] by interned id — no string hash on the hot
    /// path. Bit-identical to the string form for the same term.
    #[inline]
    pub fn idf_id(&self, id: TermId) -> f64 {
        self.idf_of_df(self.df_id(id))
    }

    #[inline]
    fn idf_of_df(&self, df: u32) -> f64 {
        if self.n_docs == 0 {
            return 1.0;
        }
        let df = df as f64;
        1.0 + ((1.0 + self.n_docs as f64) / (1.0 + df)).ln()
    }

    /// Folds another corpus's statistics into this one. Document
    /// frequencies are additive across disjoint document sets, so merging
    /// the per-shard statistics of a partitioned corpus reproduces the
    /// unpartitioned statistics exactly (same `df`, same `n_docs`, and
    /// therefore bit-identical `idf`).
    pub fn merge(&mut self, other: &CorpusStats) {
        self.n_docs += other.n_docs;
        for (term, df) in other.iter() {
            let id = self.intern(term);
            self.df[id.index()] += df;
        }
    }

    /// Number of distinct terms seen.
    pub fn vocab_size(&self) -> usize {
        self.dict().len()
    }

    /// Iterates over `(term, df)` pairs in interning (id) order —
    /// deterministic for a fixed build sequence.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32)> + '_ {
        self.dict()
            .terms()
            .iter()
            .zip(&self.df)
            .map(|(t, &d)| (t.as_str(), d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> CorpusStats {
        CorpusStats::from_token_docs(vec![
            vec!["country", "currency"],
            vec!["country", "population"],
            vec!["dog", "breed", "dog"], // duplicate within doc counted once
        ])
    }

    #[test]
    fn df_counts_docs_not_occurrences() {
        let s = stats();
        assert_eq!(s.n_docs(), 3);
        assert_eq!(s.df("country"), 2);
        assert_eq!(s.df("dog"), 1);
        assert_eq!(s.df("unseen"), 0);
    }

    #[test]
    fn idf_ordering() {
        let s = stats();
        // Rarer terms get higher IDF; unseen terms the highest.
        assert!(s.idf("unseen") > s.idf("dog"));
        assert!(s.idf("dog") > s.idf("country"));
        assert!(s.idf("country") >= 1.0);
    }

    #[test]
    fn id_api_matches_string_api() {
        let s = stats();
        for term in ["country", "currency", "dog", "breed", "population"] {
            let id = s.lookup(term).expect(term);
            assert_eq!(s.df_id(id), s.df(term));
            assert_eq!(s.idf_id(id).to_bits(), s.idf(term).to_bits());
        }
        assert_eq!(s.lookup("unseen"), None);
    }

    #[test]
    fn empty_corpus_constant_idf() {
        let s = CorpusStats::new();
        assert_eq!(s.idf("anything"), 1.0);
        assert_eq!(s.n_docs(), 0);
    }

    #[test]
    fn vocab_size_and_iter() {
        let s = stats();
        assert_eq!(s.vocab_size(), 5);
        let total: u32 = s.iter().map(|(_, d)| d).sum();
        assert_eq!(total, 2 + 1 + 1 + 1 + 1);
    }

    #[test]
    fn merge_reproduces_unpartitioned_stats() {
        let docs = [
            vec!["country", "currency"],
            vec!["country", "population"],
            vec!["dog", "breed"],
            vec!["dog", "currency"],
            vec!["area"],
        ];
        let whole = CorpusStats::from_token_docs(docs.iter().cloned());
        // Partition the docs 2/1/2 and merge the parts back together.
        let mut merged = CorpusStats::new();
        for part in [&docs[..2], &docs[2..3], &docs[3..]] {
            merged.merge(&CorpusStats::from_token_docs(part.iter().cloned()));
        }
        assert_eq!(merged.n_docs(), whole.n_docs());
        assert_eq!(merged.vocab_size(), whole.vocab_size());
        for (term, df) in whole.iter() {
            assert_eq!(merged.df(term), df, "df({term})");
            // Bit-identical IDF, not just approximately equal.
            assert_eq!(merged.idf(term).to_bits(), whole.idf(term).to_bits());
        }
        // Merging an empty side is a no-op.
        let before = merged.n_docs();
        merged.merge(&CorpusStats::new());
        assert_eq!(merged.n_docs(), before);
    }

    #[test]
    fn from_sorted_df_matches_accumulated_stats() {
        let docs = [
            vec!["country", "currency"],
            vec!["country", "population"],
            vec!["dog", "breed", "dog"],
        ];
        let accumulated = CorpusStats::from_token_docs(docs.iter().cloned());
        let terms = vec![
            "breed".to_string(),
            "country".to_string(),
            "currency".to_string(),
            "dog".to_string(),
            "population".to_string(),
        ];
        let direct = CorpusStats::from_sorted_df(3, terms, vec![1, 2, 1, 1, 1]);
        assert_eq!(direct.n_docs(), accumulated.n_docs());
        assert_eq!(direct.vocab_size(), accumulated.vocab_size());
        for (term, df) in accumulated.iter() {
            assert_eq!(direct.df(term), df, "df({term})");
            assert_eq!(direct.idf(term).to_bits(), accumulated.idf(term).to_bits());
        }
    }

    #[test]
    fn idf_monotone_in_df() {
        let mut s = CorpusStats::new();
        for _ in 0..100 {
            s.add_doc(vec!["common"]);
        }
        s.add_doc(vec!["rare", "common"]);
        assert!(s.idf("rare") > s.idf("common"));
        // Smoothed IDF stays >= 1 even for a term in every document.
        assert!(s.idf("common") >= 1.0);
    }
}
