//! Tokenization and normalization.
//!
//! All text entering the index, the features and the consolidator passes
//! through [`tokenize`] (or [`normalize_cell`] for cell-value matching), so
//! every component sees the same token stream.

/// Small English stopword list. Kept short on purpose: column keywords such
/// as "of" in "country of origin" carry little signal, but domain words must
/// never be dropped.
const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "in", "into", "is", "it", "of",
    "on", "or", "s", "that", "the", "their", "this", "to", "was", "were", "will", "with",
];

/// True iff `w` (already lowercased) is a stopword.
pub fn is_stopword(w: &str) -> bool {
    STOPWORDS.binary_search(&w).is_ok()
}

/// Longest token emitted, in UTF-8 bytes. Real words are far shorter;
/// the cap exists for adversarial or machine-generated "words" (base64
/// blobs, concatenated URLs) — an uncapped token above 64 KiB would make
/// the index's binary persistence refuse to save (its term-length field
/// is a `u16`). 256 bytes keeps every natural-language token intact
/// while bounding the dictionary far below that limit.
pub const MAX_TOKEN_BYTES: usize = 256;

/// Truncates `w` to [`MAX_TOKEN_BYTES`], backing up to the nearest
/// UTF-8 character boundary so the token stays valid.
fn cap_token_in_place(w: &mut String) {
    if w.len() <= MAX_TOKEN_BYTES {
        return;
    }
    let mut cut = MAX_TOKEN_BYTES;
    while !w.is_char_boundary(cut) {
        cut -= 1;
    }
    w.truncate(cut);
}

/// Splits `text` into lowercase alphanumeric tokens, dropping stopwords and
/// applying light plural stemming (`bands` → `band`, `currencies` →
/// `currency`), so query keywords match singular/plural header variants.
///
/// Token boundaries are any characters that are neither alphanumeric nor
/// `'`/`’` (apostrophes are removed rather than splitting, so `"world's"`
/// tokenizes to `worlds` and then stems to `world`).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    tokenize_each(text, |t| out.push(t.to_string()));
    out
}

/// The allocation-light sibling of [`tokenize`]: streams each normalized
/// token through `f` as a borrowed slice of one reused buffer, instead
/// of materializing a `Vec<String>`. Token stream and normalization are
/// identical to [`tokenize`] — the index builder and the intern-resolving
/// query path use this to tokenize without one heap `String` per token.
pub fn tokenize_each(text: &str, mut f: impl FnMut(&str)) {
    let mut buf = String::new();
    for raw in text.split(|ch: char| !(ch.is_alphanumeric() || ch == '\'' || ch == '’')) {
        if raw.is_empty() {
            continue;
        }
        buf.clear();
        for c in raw.chars() {
            if c != '\'' && c != '’' {
                buf.extend(c.to_lowercase());
            }
        }
        if buf.is_empty() || is_stopword(&buf) {
            continue;
        }
        stem_plural_in_place(&mut buf);
        cap_token_in_place(&mut buf);
        f(&buf);
    }
}

/// Light plural stemmer: strips common English plural suffixes without a
/// full Porter stemmer. Conservative on short words and `-ss`/`-us`/`-is`
/// endings ("glass", "status", "thesis" are left alone).
pub fn stem_plural(w: &str) -> String {
    let mut s = w.to_string();
    stem_plural_in_place(&mut s);
    s
}

/// [`stem_plural`] on an owned buffer — truncation instead of allocation.
fn stem_plural_in_place(w: &mut String) {
    let n = w.len();
    if n > 4 && w.ends_with("ies") {
        w.truncate(n - 3);
        w.push('y');
        return;
    }
    if n > 4
        && (w.ends_with("ches")
            || w.ends_with("shes")
            || w.ends_with("xes")
            || w.ends_with("zes")
            || w.ends_with("ses"))
    {
        w.truncate(n - 2);
        return;
    }
    if n > 3 && w.ends_with('s') && !w.ends_with("ss") && !w.ends_with("us") && !w.ends_with("is") {
        w.truncate(n - 1);
    }
}

/// Like [`tokenize`] but keeps stopwords. Used where exact phrase coverage
/// matters (e.g. cell-value comparison).
pub fn tokenize_keep_stopwords(text: &str) -> Vec<String> {
    raw_tokens(text).collect()
}

fn raw_tokens(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split(|ch: char| !(ch.is_alphanumeric() || ch == '\'' || ch == '’'))
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.chars()
                .filter(|&c| c != '\'' && c != '’')
                .flat_map(char::to_lowercase)
                .collect::<String>()
        })
        .filter(|s| !s.is_empty())
}

/// Normalizes a cell value for duplicate detection and content-overlap
/// computation: lowercase, punctuation stripped, whitespace collapsed to a
/// single space. Stopwords are kept (they are part of values like
/// "sea route to india").
pub fn normalize_cell(text: &str) -> String {
    tokenize_keep_stopwords(text).join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopword_list_is_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS, "STOPWORDS must stay sorted");
    }

    #[test]
    fn basic_tokenization() {
        assert_eq!(tokenize("Name of Explorers"), vec!["name", "explorer"]);
        assert_eq!(
            tokenize_keep_stopwords("Name of Explorers"),
            vec!["name", "of", "explorers"]
        );
    }

    #[test]
    fn punctuation_splits_tokens() {
        assert_eq!(
            tokenize("Pain-killer: side/effects (2008)"),
            vec!["pain", "killer", "side", "effect", "2008"]
        );
    }

    #[test]
    fn apostrophes_removed_not_split() {
        assert_eq!(tokenize("world's tallest"), vec!["world", "tallest"]);
        assert_eq!(tokenize("world’s"), vec!["world"]);
    }

    #[test]
    fn plural_stemming() {
        assert_eq!(stem_plural("bands"), "band");
        assert_eq!(stem_plural("currencies"), "currency");
        assert_eq!(stem_plural("churches"), "church");
        assert_eq!(stem_plural("boxes"), "box");
        assert_eq!(stem_plural("mountains"), "mountain");
        // Protected endings and short words stay intact.
        assert_eq!(stem_plural("glass"), "glass");
        assert_eq!(stem_plural("status"), "status");
        assert_eq!(stem_plural("thesis"), "thesis");
        assert_eq!(stem_plural("gas"), "gas");
        assert_eq!(stem_plural("dog"), "dog");
    }

    #[test]
    fn stemming_aligns_query_and_header() {
        // "black metal bands" should share a token with header "Band name".
        let q = tokenize("black metal bands");
        let h = tokenize("Band name");
        assert!(q.iter().any(|t| h.contains(t)));
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(tokenize("Österreich GmbH"), vec!["österreich", "gmbh"]);
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("  \t \n ").is_empty());
        assert!(tokenize("--- !!!").is_empty());
    }

    #[test]
    fn normalize_cell_collapses() {
        assert_eq!(normalize_cell("  Vasco   da Gama! "), "vasco da gama");
        assert_eq!(normalize_cell("Sea route to India"), "sea route to india");
    }

    #[test]
    fn numbers_survive() {
        assert_eq!(tokenize("2236 km"), vec!["2236", "km"]);
    }

    #[test]
    fn oversized_token_is_capped_at_a_char_boundary() {
        // A single 100 KiB "word" — longer than the index format's 64 KiB
        // u16 term-length limit — must come out bounded by MAX_TOKEN_BYTES.
        let giant = "x".repeat(100 * 1024);
        let toks = tokenize(&giant);
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].len(), MAX_TOKEN_BYTES);

        // Multi-byte characters: the cut must land on a char boundary, so
        // the capped token is valid UTF-8 and at most MAX_TOKEN_BYTES long.
        let giant_umlaut = "ö".repeat(80 * 1024);
        let toks = tokenize(&giant_umlaut);
        assert_eq!(toks.len(), 1);
        assert!(toks[0].len() <= MAX_TOKEN_BYTES);
        assert!(toks[0].chars().all(|c| c == 'ö'));

        // Normal-length tokens are untouched.
        assert_eq!(tokenize("ordinary words"), vec!["ordinary", "word"]);
    }

    #[test]
    fn stopword_membership() {
        assert!(is_stopword("the"));
        assert!(is_stopword("of"));
        assert!(!is_stopword("country"));
    }
}
