//! # wwt-text
//!
//! Text substrate for WWT: tokenization, cell-value normalization, corpus
//! document-frequency statistics (IDF), TF-IDF vectors and the similarity
//! primitives used by the paper's features (§3.2.1):
//!
//! * `TI(w)` — the TF-IDF score of a term, realized as IDF from
//!   [`CorpusStats`] (query-side term frequency is 1);
//! * `‖P‖²` — squared L2 norm of the TF-IDF vector over a token sequence;
//! * `inSim(P, H_rc)` — TF-IDF-weighted cosine similarity;
//! * the covered-fraction variant used by the `Cover` feature (§3.2.2).
//!
//! The tokenizer is deliberately simple and deterministic: Unicode
//! whitespace/punctuation splitting plus lowercasing, with a small English
//! stopword list applied where the caller asks for it.

pub mod dict;
pub mod stats;
pub mod tfidf;
pub mod tokenize;

pub use dict::{TermDict, TermId};
pub use stats::CorpusStats;
pub use tfidf::TfIdfVector;
pub use tokenize::{
    is_stopword, normalize_cell, stem_plural, tokenize, tokenize_each, tokenize_keep_stopwords,
    MAX_TOKEN_BYTES,
};
