//! The interned vocabulary: `String ↔ TermId`.
//!
//! Classic inverted-index engineering (the Lucene-style term dictionary
//! the paper's index assumes): every distinct token gets a dense `u32`
//! id, so the query path compares and indexes integers instead of
//! hashing strings. The index freezes its dictionary in **lexicographic
//! term order**, which makes id assignment deterministic across runs,
//! platforms and processes — a persisted index reloads into the same
//! ids that built it.

use std::collections::HashMap;

/// Dense id of an interned term. Ids are only meaningful relative to the
/// [`TermDict`] that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub u32);

impl TermId {
    /// The id as a dense `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only term interner: `String ↔ TermId`.
///
/// Two storage modes behind one API: while *accumulating* (ids in
/// arrival order), a hash map backs `lookup`/`intern`; once *frozen
/// sorted* ([`TermDict::from_sorted_terms`], how every index
/// dictionary is built), the map is dropped entirely and `lookup`
/// binary-searches the sorted term list — the vocabulary's string
/// bytes stay resident **once**, not once in a `Vec` plus once as map
/// keys.
#[derive(Debug, Clone, Default)]
pub struct TermDict {
    terms: Vec<String>,
    /// `None` for a frozen sorted dictionary (lookups binary-search
    /// `terms`); built lazily if such a dictionary is interned into
    /// again.
    ids: Option<HashMap<String, u32>>,
}

impl TermDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a dictionary assigning ids `0..n` in the order given.
    /// Callers wanting deterministic ids pass a sorted, deduplicated
    /// term list (the index freeze does); duplicates keep the first id.
    pub fn from_terms<I, S>(terms: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let terms = terms.into_iter();
        let mut dict = TermDict {
            terms: Vec::with_capacity(terms.size_hint().0),
            ids: Some(HashMap::with_capacity(terms.size_hint().0)),
        };
        for t in terms {
            let t: String = t.into();
            dict.intern(&t);
        }
        dict
    }

    /// [`TermDict::from_terms`] taking ownership of an already sorted,
    /// deduplicated term list — the freeze-time fast path: no map is
    /// built (ids are positions, lookups binary-search), so the terms
    /// are stored exactly once.
    pub fn from_sorted_terms(terms: Vec<String>) -> Self {
        debug_assert!(terms.windows(2).all(|w| w[0] < w[1]), "unsorted terms");
        TermDict { terms, ids: None }
    }

    /// The id of `term`, interning it if unseen.
    pub fn intern(&mut self, term: &str) -> TermId {
        let terms = &self.terms;
        let map = self.ids.get_or_insert_with(|| {
            terms
                .iter()
                .enumerate()
                .map(|(i, t)| (t.clone(), i as u32))
                .collect()
        });
        if let Some(&id) = map.get(term) {
            return TermId(id);
        }
        let id = self.terms.len() as u32;
        self.terms.push(term.to_string());
        if let Some(map) = &mut self.ids {
            map.insert(term.to_string(), id);
        }
        TermId(id)
    }

    /// The id of `term`, if interned.
    #[inline]
    pub fn lookup(&self, term: &str) -> Option<TermId> {
        match &self.ids {
            Some(map) => map.get(term).copied().map(TermId),
            None => self
                .terms
                .binary_search_by(|t| t.as_str().cmp(term))
                .ok()
                .map(|i| TermId(i as u32)),
        }
    }

    /// The term behind an id issued by this dictionary.
    #[inline]
    pub fn term(&self, id: TermId) -> &str {
        &self.terms[id.index()]
    }

    /// Number of interned terms (`== 1 + max id`).
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True iff nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Every interned term, in id order.
    pub fn terms(&self) -> &[String] {
        &self.terms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = TermDict::new();
        let a = d.intern("country");
        let b = d.intern("currency");
        assert_ne!(a, b);
        assert_eq!(d.intern("country"), a);
        assert_eq!(d.len(), 2);
        assert_eq!(d.term(a), "country");
        assert_eq!(d.lookup("currency"), Some(b));
        assert_eq!(d.lookup("unseen"), None);
    }

    #[test]
    fn from_terms_assigns_dense_ids_in_order() {
        let d = TermDict::from_terms(["alpha", "beta", "gamma"]);
        assert_eq!(d.lookup("alpha"), Some(TermId(0)));
        assert_eq!(d.lookup("beta"), Some(TermId(1)));
        assert_eq!(d.lookup("gamma"), Some(TermId(2)));
        assert_eq!(d.terms(), &["alpha", "beta", "gamma"]);
    }

    #[test]
    fn duplicates_keep_first_id() {
        let d = TermDict::from_terms(["a", "b", "a"]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.lookup("a"), Some(TermId(0)));
    }

    #[test]
    fn empty_dict() {
        let d = TermDict::new();
        assert!(d.is_empty());
        assert_eq!(d.lookup("x"), None);
    }

    #[test]
    fn frozen_sorted_dict_looks_up_without_a_map_and_can_resume_interning() {
        let mut d = TermDict::from_sorted_terms(vec!["ant".into(), "bee".into(), "cow".into()]);
        assert_eq!(d.lookup("ant"), Some(TermId(0)));
        assert_eq!(d.lookup("cow"), Some(TermId(2)));
        assert_eq!(d.lookup("aardvark"), None);
        assert_eq!(d.lookup("zebra"), None);
        // Interning into a frozen dictionary lazily rebuilds the map and
        // keeps every existing id.
        assert_eq!(d.intern("bee"), TermId(1));
        assert_eq!(d.intern("dog"), TermId(3));
        assert_eq!(d.lookup("dog"), Some(TermId(3)));
        assert_eq!(d.lookup("ant"), Some(TermId(0)));
    }
}
