//! Minimal offline stub of the `bytes` crate: just the little-endian
//! put/get API that `wwt-index::persist` uses, backed by `Vec<u8>` and
//! plain byte slices. Panics on underflow exactly like the real crate's
//! `Buf` (callers bounds-check with `remaining()` first).

/// Growable byte buffer (subset of `bytes::BytesMut`).
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated bytes.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff nothing was written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Write side (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Read side (subset of `bytes::Buf`), implemented for byte slices; each
/// `get_*` advances the slice.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::new();
        w.put_u64_le(0xDEAD_BEEF_CAFE_F00D);
        w.put_u32_le(77);
        w.put_u16_le(9);
        w.put_slice(b"ab");
        let v = w.to_vec();
        let mut r: &[u8] = &v;
        assert_eq!(r.remaining(), 16);
        assert_eq!(r.get_u64_le(), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(r.get_u32_le(), 77);
        assert_eq!(r.get_u16_le(), 9);
        let mut two = [0u8; 2];
        r.copy_to_slice(&mut two);
        assert_eq!(&two, b"ab");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
