//! Minimal offline stub of the `proptest` crate.
//!
//! Supports the subset this workspace's tests use: the `proptest!` macro
//! with `#![proptest_config(ProptestConfig::with_cases(n))]`, integer
//! range strategies (`lo..hi`), and `prop_assert!`. Instead of shrinking
//! and persistence, each case draws deterministically from a SplitMix64
//! stream seeded per test, so failures are reproducible run to run.

/// Configuration (subset of `proptest::prelude::ProptestConfig`).
pub mod prelude {
    /// Number-of-cases knob.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// A value source for one macro argument (subset of `Strategy`).
pub trait Strategy {
    /// The produced value type.
    type Value;
    /// Draws one value from the deterministic stream.
    fn draw(&self, state: &mut u64) -> Self::Value;
}

fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn draw(&self, state: &mut u64) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (next_u64(state) % span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// Draws one value (used by the generated test body).
pub fn sample<S: Strategy>(state: &mut u64, strategy: S) -> S::Value {
    strategy.draw(state)
}

/// Property-test block (subset of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::prelude::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases: u32 = {
                    let cfg: $crate::prelude::ProptestConfig = $cfg;
                    cfg.cases
                };
                let mut state: u64 = 0xC0FF_EE00_D15E_A5E5;
                for _case in 0..cases {
                    $( let $arg = $crate::sample(&mut state, $strategy); )+
                    $body
                }
            }
        )+
    };
}

/// Assertion inside a property (maps to `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[cfg(test)]
mod tests {
    crate::proptest! {
        #![proptest_config(crate::prelude::ProptestConfig::with_cases(32))]

        /// Drawn values stay inside their strategy ranges.
        #[test]
        fn draws_respect_ranges(a in 1usize..5, b in 0u64..10) {
            crate::prop_assert!((1..5).contains(&a), "a out of range: {}", a);
            crate::prop_assert!(b < 10);
        }
    }

    #[test]
    fn deterministic_stream() {
        let mut s1 = 7u64;
        let mut s2 = 7u64;
        for _ in 0..10 {
            assert_eq!(
                super::sample(&mut s1, 0u64..1000),
                super::sample(&mut s2, 0u64..1000)
            );
        }
    }
}
