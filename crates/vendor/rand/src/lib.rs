//! Minimal, deterministic stub of the `rand` crate.
//!
//! The build container has no registry access, so this workspace vendors
//! the small API subset it uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and the [`RngExt`] extension trait with
//! `random_range` / `random_bool`. The generator is SplitMix64 — fast,
//! full-period, and stable across platforms, which is all the synthetic
//! corpus generator needs (everything downstream only requires
//! reproducibility given a seed).

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range abstraction accepted by [`RngExt::random_range`]: half-open
/// (`a..b`) and inclusive (`a..=b`) integer ranges.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range using `rng`.
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Extension methods mirroring the `rand` sampling API used here.
pub trait RngExt {
    /// Uniform sample from an integer range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Bernoulli draw with probability `p` (clamped to `[0,1]`).
    fn random_bool(&mut self, p: f64) -> bool;
}

pub mod rngs {
    //! Concrete generators (subset of `rand::rngs`).
    use super::{RngExt, SampleRange, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0,1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngExt for StdRng {
        fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
            range.sample(self)
        }

        fn random_bool(&mut self, p: f64) -> bool {
            self.next_f64() < p.clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.random_range(3..9usize);
            assert!((3..9).contains(&x));
            let y = rng.random_range(0..=2u8);
            assert!(y <= 2);
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
