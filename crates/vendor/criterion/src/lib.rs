//! Minimal offline stub of the `criterion` crate.
//!
//! Implements the subset of the benchmarking API the workspace benches
//! use — `Criterion`, benchmark groups, `Bencher::iter`, `BenchmarkId`,
//! `black_box`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical engine it
//! runs a fixed warm-up then a timed measurement window and prints
//! mean-per-iteration, which is enough to anchor relative comparisons in
//! an offline container.

use std::time::{Duration, Instant};

/// Opaque value barrier (subset of `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput of a benchmark, echoed in the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name` + parameter display, like criterion's `BenchmarkId::new`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{parameter}", name.into()),
        }
    }
}

/// Per-benchmark timing harness.
pub struct Bencher {
    /// Measured mean time per iteration, filled by [`Bencher::iter`].
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Times `routine`: short warm-up, then as many iterations as fit in
    /// the measurement window (at least 10).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warmup_end = Instant::now() + Duration::from_millis(300);
        while Instant::now() < warmup_end {
            black_box(routine());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        let measure_end = start + Duration::from_millis(1000);
        while Instant::now() < measure_end || iters < 10 {
            black_box(routine());
            iters += 1;
        }
        self.elapsed_per_iter = start.elapsed() / iters.max(1) as u32;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's window is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares throughput for subsequent benchmarks in the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: R,
    ) -> &mut Self {
        let mut b = Bencher {
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id.into_benchmark_id(), b.elapsed_per_iter);
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: R,
    ) -> &mut Self {
        let mut b = Bencher {
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id.into_benchmark_id(), b.elapsed_per_iter);
        self
    }

    /// Ends the group (printing is per-benchmark; nothing to flush).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, per_iter: Duration) {
        let _ = self.criterion;
        let thr = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                format!("  {:.0} elem/s", n as f64 / per_iter.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                format!("  {:.0} B/s", n as f64 / per_iter.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{}: {:>12.3?}/iter{thr}", self.name, id.name, per_iter);
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, name: &str, f: R) -> &mut Self {
        self.benchmark_group("bench")
            .bench_function(name.to_string(), f);
        self
    }
}

/// Conversion into [`BenchmarkId`] for plain strings and prebuilt ids.
pub trait IntoBenchmarkId {
    /// The benchmark id to report under.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self }
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
        }
    }
}

/// Declares a benchmark group function list (subset of criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("test");
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn benchmark_id_formats_parameter() {
        let id = BenchmarkId::new("probe", 42).into_benchmark_id();
        assert_eq!(id.name, "probe/42");
    }
}
