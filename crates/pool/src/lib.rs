//! # wwt-pool
//!
//! A **persistent** worker pool behind the workspace's `fan_out`
//! primitive.
//!
//! The original `fan_out` spawned scoped threads per call, which made
//! every probe pay thread start-up and — worse — gave each probe fresh
//! threads, so `thread_local!` scratch (the index's epoch-tagged score
//! accumulator) was never actually reused on the parallel path. This
//! crate keeps one process-wide set of workers alive
//! ([`WorkerPool::global`]) and hands them batches of indexed units:
//!
//! * results come back **in input order** (`Vec<R>` with `result[i] =
//!   f(i)`), exactly like the scoped version, so every byte-identity
//!   guarantee built on deterministic fan-out order carries over;
//! * the **caller participates**: the submitting thread drains the same
//!   shared cursor as the workers, so a batch always makes progress even
//!   when every worker is busy — nested `run` calls (a pooled unit that
//!   itself fans out) cannot deadlock;
//! * unit panics are caught per-unit and the first one is re-raised on
//!   the caller **after** the batch fully settles, so a panicking unit
//!   can never leave a worker touching freed caller state.
//!
//! ## Soundness of the borrowed closure
//!
//! `run` executes a caller-stack closure on pool threads without scoped
//! threads. The lifetime erasure is sound because `run` does not return
//! (or unwind) until every helper job it enqueued is **provably done
//! with the closure**: jobs still queued are removed under the queue
//! lock (workers bump a per-batch `started` counter under that same lock
//! when they claim a job, so after removal the started count is final),
//! and the caller then blocks until `exited == started` — every started
//! helper's last touch of caller state happens before its `exited`
//! increment.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A caught panic from one fan-out unit: which unit, and the panic
/// message (extracted from the payload — `&str` / `String` payloads are
/// kept verbatim, anything else is summarized). Returned by
/// [`WorkerPool::try_run`] / [`try_fan_out`] so callers can isolate a
/// crashing unit instead of dying with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitPanic {
    /// Input index of the unit that panicked.
    pub unit: usize,
    /// The panic message.
    pub message: String,
}

impl std::fmt::Display for UnitPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unit {} panicked: {}", self.unit, self.message)
    }
}

impl std::error::Error for UnitPanic {}

/// Best-effort extraction of a panic payload's message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One queued helper slot of a [`WorkerPool::run`] batch. The closure
/// reference is lifetime-erased; see the module docs for why that is
/// sound.
struct Batch {
    /// Drains the batch's shared cursor until empty. Points into the
    /// submitting caller's stack frame.
    work: &'static (dyn Fn() + Sync),
    /// Helper jobs claimed by a worker, bumped under the pool's queue
    /// lock at claim time — final once the caller has purged the queue.
    started: AtomicUsize,
    /// Helper jobs that finished draining (their last touch of caller
    /// state is before this increment).
    exited: Mutex<usize>,
    /// Signalled on every `exited` increment.
    settled: Condvar,
}

struct PoolState {
    queue: Mutex<VecDeque<Arc<Batch>>>,
    task_ready: Condvar,
    stop: AtomicBool,
}

/// A fixed set of persistent worker threads executing indexed fan-out
/// batches. One instance serves any number of threads; batches from
/// concurrent callers interleave in the shared queue.
pub struct WorkerPool {
    state: Arc<PoolState>,
    threads: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// A pool with `threads` persistent workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let state = Arc::new(PoolState {
            queue: Mutex::new(VecDeque::new()),
            task_ready: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let handles = (0..threads)
            .map(|i| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("wwt-pool-{i}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            state,
            threads,
            handles,
        }
    }

    /// The process-wide pool, sized to the machine (one worker per
    /// core). Created on first use and kept alive for the process — its
    /// threads are what make `thread_local!` scratch in pooled code
    /// actually persistent.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            WorkerPool::new(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4),
            )
        })
    }

    /// Number of persistent workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0..n)` across at most `max_threads` concurrent executors
    /// (the caller plus pool workers) and returns the results in input
    /// order. `max_threads <= 1` runs serially on the caller with no
    /// queue traffic. If any unit panics, the first panic is re-raised
    /// on the caller after the whole batch settles.
    pub fn run<R, F>(&self, n: usize, max_threads: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        if max_threads <= 1 || n == 1 {
            return (0..n).map(f).collect();
        }

        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let drain = || loop {
            let i = cursor.fetch_add(1, Ordering::SeqCst);
            if i >= n {
                return;
            }
            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                Ok(r) => *results[i].lock().unwrap() = Some(r),
                Err(payload) => {
                    let mut slot = first_panic.lock().unwrap();
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
        };

        // The caller is one executor; enqueue the rest as helper jobs.
        // Helpers beyond the worker count would only ever be cancelled,
        // so don't bother queueing them.
        let helpers = (max_threads.min(n) - 1).min(self.threads);
        let work: &(dyn Fn() + Sync) = &drain;
        // SAFETY: the settle protocol below guarantees no pool thread
        // holds (or will ever again call) this reference once `run`
        // returns or unwinds; see the module docs.
        let work =
            unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(work) };
        let batch = Arc::new(Batch {
            work,
            started: AtomicUsize::new(0),
            exited: Mutex::new(0),
            settled: Condvar::new(),
        });
        {
            let mut queue = self.state.queue.lock().unwrap();
            for _ in 0..helpers {
                queue.push_back(Arc::clone(&batch));
            }
        }
        // notify_all: `helpers` may exceed the waiters; surplus wakes
        // re-park harmlessly.
        self.state.task_ready.notify_all();

        // Participate until the cursor is exhausted.
        drain();

        // Settle: purge still-queued helper jobs (claims bump `started`
        // under this same lock, so after the purge `started` is final),
        // then wait out every claimed helper.
        {
            let mut queue = self.state.queue.lock().unwrap();
            queue.retain(|queued| !Arc::ptr_eq(queued, &batch));
        }
        let started = batch.started.load(Ordering::SeqCst);
        let mut exited = batch.exited.lock().unwrap();
        while *exited < started {
            exited = batch.settled.wait(exited).unwrap();
        }
        drop(exited);

        if let Some(payload) = first_panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every unit index is claimed exactly once")
            })
            .collect()
    }

    /// Like [`WorkerPool::run`], but a panicking unit is **isolated**
    /// instead of re-raised: every unit always runs, and `result[i]` is
    /// `Err(UnitPanic)` for exactly the units that panicked. This is the
    /// fail-soft fan-out primitive — the caller decides per unit whether
    /// to degrade, retry, or surface the failure. Unlike `run`'s serial
    /// path, the serial path here also catches per-unit panics, so the
    /// two paths have identical failure semantics.
    pub fn try_run<R, F>(&self, n: usize, max_threads: usize, f: F) -> Vec<Result<R, UnitPanic>>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let unit = |i: usize| {
            catch_unwind(AssertUnwindSafe(|| f(i))).map_err(|payload| UnitPanic {
                unit: i,
                message: panic_message(payload.as_ref()),
            })
        };
        if n == 0 {
            return Vec::new();
        }
        if max_threads <= 1 || n == 1 {
            return (0..n).map(unit).collect();
        }

        let results: Vec<Mutex<Option<Result<R, UnitPanic>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        // The per-unit closure never unwinds (the catch is inside), so
        // the drain loop needs no panic slot of its own.
        let drain = || loop {
            let i = cursor.fetch_add(1, Ordering::SeqCst);
            if i >= n {
                return;
            }
            *results[i].lock().unwrap() = Some(unit(i));
        };

        let helpers = (max_threads.min(n) - 1).min(self.threads);
        let work: &(dyn Fn() + Sync) = &drain;
        // SAFETY: identical settle protocol to `run` — no pool thread
        // holds this reference once we return; see the module docs.
        let work =
            unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(work) };
        let batch = Arc::new(Batch {
            work,
            started: AtomicUsize::new(0),
            exited: Mutex::new(0),
            settled: Condvar::new(),
        });
        {
            let mut queue = self.state.queue.lock().unwrap();
            for _ in 0..helpers {
                queue.push_back(Arc::clone(&batch));
            }
        }
        self.state.task_ready.notify_all();

        drain();

        {
            let mut queue = self.state.queue.lock().unwrap();
            queue.retain(|queued| !Arc::ptr_eq(queued, &batch));
        }
        let started = batch.started.load(Ordering::SeqCst);
        let mut exited = batch.exited.lock().unwrap();
        while *exited < started {
            exited = batch.settled.wait(exited).unwrap();
        }
        drop(exited);

        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every unit index is claimed exactly once")
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        self.state.task_ready.notify_all();
        for handle in self.handles.drain(..) {
            drop(handle.join());
        }
    }
}

fn worker_loop(state: &PoolState) {
    loop {
        let batch = {
            let mut queue = state.queue.lock().unwrap();
            loop {
                if let Some(batch) = queue.pop_front() {
                    // Claimed: the submitting caller now waits for this
                    // helper instead of cancelling it. Must happen under
                    // the queue lock (see `Batch::started`).
                    batch.started.fetch_add(1, Ordering::SeqCst);
                    break batch;
                }
                if state.stop.load(Ordering::SeqCst) {
                    return;
                }
                queue = state.task_ready.wait(queue).unwrap();
            }
        };
        (batch.work)();
        let mut exited = batch.exited.lock().unwrap();
        *exited += 1;
        batch.settled.notify_all();
    }
}

/// Runs `f(i)` for `i in 0..n` across up to `threads` concurrent
/// executors of the [`WorkerPool::global`] pool (the calling thread
/// included) and returns the results in input order. `threads <= 1`
/// runs serially on the caller. Drop-in for the old scoped-thread
/// `fan_out`: same signature, same ordering, same panic behavior — but
/// the workers (and their `thread_local!` state) persist across calls.
pub fn fan_out<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    WorkerPool::global().run(n, threads, f)
}

/// [`fan_out`], but each unit's wall-clock duration is measured on the
/// executor that ran it and returned alongside the results (both in
/// input order). This is the span-aware building block behind trace
/// child spans for scatter-gather probes and pooled column-map batches
/// — callers that don't need per-unit timings should keep using
/// [`fan_out`], which reads no clocks.
/// [`fan_out`], but panic-isolating: `result[i]` is `Err(UnitPanic)` for
/// exactly the units that panicked, and every unit always runs. Use this
/// wherever one crashing unit must not take the whole batch (or the
/// calling worker) down with it.
pub fn try_fan_out<R, F>(n: usize, threads: usize, f: F) -> Vec<Result<R, UnitPanic>>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    WorkerPool::global().try_run(n, threads, f)
}

pub fn fan_out_timed<R, F>(n: usize, threads: usize, f: F) -> (Vec<R>, Vec<std::time::Duration>)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let timed = WorkerPool::global().run(n, threads, |i| {
        let t0 = std::time::Instant::now();
        let r = f(i);
        (r, t0.elapsed())
    });
    timed.into_iter().unzip()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_keep_input_order() {
        for threads in [1, 2, 3, 8, 64] {
            let out = fan_out(17, threads, |i| i * 10);
            assert_eq!(out, (0..17).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(fan_out(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(fan_out(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn every_unit_runs_exactly_once() {
        let hits: Vec<AtomicU64> = (0..200).map(|_| AtomicU64::new(0)).collect();
        let out = fan_out(200, 7, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(out.len(), 200);
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "unit {i}");
        }
    }

    #[test]
    fn nested_runs_do_not_deadlock() {
        // Outer batch saturates the pool; each unit fans out again.
        // Caller participation guarantees progress regardless of how
        // many workers exist.
        let out = fan_out(6, 8, |i| fan_out(5, 8, move |j| i * 100 + j));
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(*inner, (0..5).map(|j| i * 100 + j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn concurrent_callers_share_the_pool() {
        let totals: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|c| {
                    scope.spawn(move || fan_out(50, 4, |i| (c * 1000 + i) as u64).iter().sum())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (c, total) in totals.iter().enumerate() {
            let want: u64 = (0..50).map(|i| (c * 1000 + i) as u64).sum();
            assert_eq!(*total, want);
        }
    }

    #[test]
    fn panics_propagate_after_the_batch_settles() {
        let ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            fan_out(12, 4, |i| {
                ran.fetch_add(1, Ordering::SeqCst);
                if i == 5 {
                    panic!("unit 5 exploded");
                }
                i
            })
        }));
        assert!(result.is_err(), "panic must surface to the caller");
        // Every unit was claimed (the cursor never skips), and the pool
        // stays usable afterwards.
        assert_eq!(ran.load(Ordering::SeqCst), 12);
        assert_eq!(fan_out(3, 4, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn try_fan_out_isolates_panicking_units() {
        for threads in [1, 4] {
            let out = try_fan_out(12, threads, |i| {
                if i % 5 == 2 {
                    panic!("unit {i} exploded");
                }
                i * 10
            });
            assert_eq!(out.len(), 12);
            for (i, slot) in out.iter().enumerate() {
                if i % 5 == 2 {
                    let err = slot.as_ref().unwrap_err();
                    assert_eq!(err.unit, i);
                    assert!(err.message.contains("exploded"), "got {:?}", err.message);
                } else {
                    assert_eq!(*slot, Ok(i * 10));
                }
            }
        }
        // The pool survives and keeps answering.
        assert_eq!(fan_out(3, 4, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn try_fan_out_all_ok_matches_fan_out() {
        for threads in [1, 2, 8] {
            let out: Vec<usize> = try_fan_out(17, threads, |i| i * 3)
                .into_iter()
                .map(|r| r.unwrap())
                .collect();
            assert_eq!(out, fan_out(17, threads, |i| i * 3));
        }
    }

    #[test]
    fn unit_panic_message_extraction() {
        let boxed: Box<dyn std::any::Any + Send> = Box::new("str payload");
        assert_eq!(panic_message(boxed.as_ref()), "str payload");
        let boxed: Box<dyn std::any::Any + Send> = Box::new(String::from("string payload"));
        assert_eq!(panic_message(boxed.as_ref()), "string payload");
        let boxed: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(boxed.as_ref()), "non-string panic payload");
        let p = UnitPanic {
            unit: 7,
            message: "boom".into(),
        };
        assert_eq!(p.to_string(), "unit 7 panicked: boom");
    }

    #[test]
    fn private_pool_drops_cleanly() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.threads(), 3);
        assert_eq!(
            pool.run(9, 3, |i| i * i),
            (0..9).map(|i| i * i).collect::<Vec<_>>()
        );
        drop(pool); // joins its workers
    }

    #[test]
    fn timed_fan_out_matches_and_measures_every_unit() {
        for threads in [1, 4] {
            let (out, times) = fan_out_timed(9, threads, |i| {
                if i == 3 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                i * 2
            });
            assert_eq!(out, (0..9).map(|i| i * 2).collect::<Vec<_>>());
            assert_eq!(times.len(), 9);
            assert!(times[3] >= std::time::Duration::from_millis(2));
        }
    }

    #[test]
    fn borrowed_state_survives_the_batch() {
        // Results may borrow from the caller's stack (R: Send, not
        // 'static-bounded in spirit): stress with owned Strings built
        // from borrowed input.
        let words = ["alpha", "beta", "gamma", "delta"];
        let out = fan_out(words.len(), 4, |i| format!("{}-{}", words[i], i));
        assert_eq!(out, vec!["alpha-0", "beta-1", "gamma-2", "delta-3"]);
    }
}
